//! `cargo xtask`-style developer tooling for the depminer workspace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p xtask -- check [--json] [PATH...]
//! ```
//!
//! `check` runs the in-tree static-analysis pass (see [`lint`]) over the
//! workspace sources — or over the given files/directories only — and
//! exits non-zero if any diagnostic is produced. `--json` switches the
//! report to a machine-readable JSON array.

mod lexer;
mod lint;

use lint::Diagnostic;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: cargo run -p xtask -- check [--json] [PATH...]");
            eprintln!("rules: {}", lint::RULES.join(", "));
            return if args.next().is_none() && std::env::args().len() == 1 {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            };
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}` (try `check`)");
            return ExitCode::from(2);
        }
    }
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with('-') => {
                eprintln!("xtask: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = workspace_root();
    if paths.is_empty() {
        paths.push(root.clone());
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for p in &paths {
        collect_rust_files(p, &mut files);
    }
    files.sort();
    files.dedup();

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut read_errors = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(file) {
            Ok(source) => diags.extend(lint::lint_file(&rel, &source)),
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                read_errors += 1;
            }
        }
    }

    if json {
        let body: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("xtask check: {} files, clean", files.len());
        } else {
            println!(
                "xtask check: {} files, {} diagnostic(s)",
                files.len(),
                diags.len()
            );
        }
    }
    if diags.is_empty() && read_errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: walk up from the manifest dir (or cwd) to the
/// directory whose `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

/// Recursively collects `.rs` files, skipping build output and VCS dirs.
fn collect_rust_files(path: &Path, out: &mut Vec<PathBuf>) {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if matches!(name, "target" | ".git" | "node_modules") {
        return;
    }
    if path.is_dir() {
        let Ok(entries) = std::fs::read_dir(path) else {
            return;
        };
        for entry in entries.flatten() {
            collect_rust_files(&entry.path(), out);
        }
    } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
        out.push(path.to_path_buf());
    }
}
