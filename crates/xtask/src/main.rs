//! `cargo xtask`-style developer tooling for the depminer workspace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p xtask -- check [--json] [--diff BASE] [--baseline FILE] [PATH...]
//! cargo run -p xtask -- validate-profile FILE [--require a,b,c]
//! ```
//!
//! `validate-profile` checks a `depminer --profile` JSON export against
//! the span-tree invariants (schema tag, balanced enter/exit, child
//! durations bounded by parents) and, with `--require`, that the named
//! spans all appear — used by `ci.sh` after the profiled smoke mine.
//!
//! `check` runs the in-tree static-analysis pass (see `xtask::lint`)
//! over the workspace sources and exits non-zero if any diagnostic
//! survives the baseline. Modes:
//!
//! * `--json` — machine-readable JSON array (shape is stable:
//!   `{"path":…,"line":…,"rule":…,"message":…}` per finding).
//! * `--diff BASE` — lint only the `.rs` files changed since the git
//!   revision `BASE` (`git diff --name-only BASE`), for fast local runs.
//! * `--baseline FILE` — suppression list of known findings, one
//!   `<rule> <path>` pair per line (`#` comments allowed). Defaults to
//!   `xtask-baseline.txt` at the workspace root when present. Suppressed
//!   findings are reported as a count, never as failures.
//! * `PATH...` — restrict the scan to the given files/directories.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::lint::{self, Diagnostic};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        Some("validate-profile") => return validate_profile(args),
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage: cargo run -p xtask -- check [--json] [--diff BASE] [--baseline FILE] [PATH...]"
            );
            eprintln!("       cargo run -p xtask -- validate-profile FILE [--require a,b,c]");
            eprintln!("rules: {}", lint::RULES.join(", "));
            return if args.next().is_none() && std::env::args().len() == 1 {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            };
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}` (try `check` or `validate-profile`)");
            return ExitCode::from(2);
        }
    }
    let mut json = false;
    let mut diff_base: Option<String> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--diff" => match args.next() {
                Some(base) => diff_base = Some(base),
                None => {
                    eprintln!("xtask: --diff requires a git revision argument");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => {
                    eprintln!("xtask: --baseline requires a file argument");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("xtask: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = workspace_root();

    // `--diff BASE`: changed files override the path arguments.
    if let Some(base) = &diff_base {
        match changed_files(&root, base) {
            Ok(changed) => {
                paths = changed;
                if paths.is_empty() {
                    if json {
                        println!("[]");
                    } else {
                        println!("xtask check: no .rs files changed since {base}");
                    }
                    return ExitCode::SUCCESS;
                }
            }
            Err(msg) => {
                eprintln!("xtask: {msg}");
                return ExitCode::from(2);
            }
        }
    } else if paths.is_empty() {
        paths.push(root.clone());
    }

    // Baseline: explicit file, or the checked-in default when present.
    let baseline = match load_baseline(&root, baseline_path.as_deref()) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for p in &paths {
        collect_rust_files(p, &mut files);
    }
    files.sort();
    files.dedup();

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut suppressed = 0usize;
    let mut read_errors = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(file) {
            Ok(source) => {
                for d in lint::lint_file(&rel, &source) {
                    if baseline.iter().any(|(r, p)| *r == d.rule && *p == d.path) {
                        suppressed += 1;
                    } else {
                        diags.push(d);
                    }
                }
            }
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                read_errors += 1;
            }
        }
    }

    if json {
        let body: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for d in &diags {
            println!("{d}");
        }
        let base = if suppressed > 0 {
            format!(" ({suppressed} baselined)")
        } else {
            String::new()
        };
        if diags.is_empty() {
            println!("xtask check: {} files, clean{base}", files.len());
        } else {
            println!(
                "xtask check: {} files, {} diagnostic(s){base}",
                files.len(),
                diags.len()
            );
        }
    }
    if diags.is_empty() && read_errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `validate-profile FILE [--require a,b,c]`: parse a profile JSON
/// export and check the span-tree invariants plus any required span
/// names. Exit codes: 0 valid, 1 invalid or unreadable, 2 usage.
fn validate_profile(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut file: Option<String> = None;
    let mut require: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => match args.next() {
                Some(list) => require.extend(
                    list.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty()),
                ),
                None => {
                    eprintln!("xtask: --require needs a comma-separated span-name list");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("xtask: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => {
                if file.is_some() {
                    eprintln!("xtask: validate-profile takes exactly one FILE");
                    return ExitCode::from(2);
                }
                file = Some(other.to_string());
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: cargo run -p xtask -- validate-profile FILE [--require a,b,c]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let required: Vec<&str> = require.iter().map(String::as_str).collect();
    match depminer_observe::profile::validate_profile_json(&text, &required) {
        Ok(names) => {
            println!(
                "xtask validate-profile: {file}: OK ({} span name(s): {})",
                names.len(),
                names.join(", ")
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("xtask validate-profile: {file}: INVALID: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The `.rs` files changed since `base`, per `git diff --name-only`
/// (repo-relative names joined back onto the workspace root; deleted
/// files are skipped).
fn changed_files(root: &Path, base: &str) -> Result<Vec<PathBuf>, String> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", base])
        .output()
        .map_err(|e| format!("cannot run git: {e}"))?;
    if !output.status.success() {
        let err = String::from_utf8_lossy(&output.stderr);
        return Err(format!(
            "git diff --name-only {base} failed: {}",
            err.trim()
        ));
    }
    let names = String::from_utf8_lossy(&output.stdout);
    Ok(names
        .lines()
        .filter(|n| n.ends_with(".rs"))
        .map(|n| root.join(n))
        .filter(|p| p.is_file())
        .collect())
}

/// Parses the baseline suppression file: `<rule> <path>` per line, `#`
/// starts a comment. An explicitly-passed file must exist; the default
/// `xtask-baseline.txt` is optional.
fn load_baseline(root: &Path, explicit: Option<&Path>) -> Result<Vec<(String, String)>, String> {
    let (path, required) = match explicit {
        Some(p) => (p.to_path_buf(), true),
        None => (root.join("xtask-baseline.txt"), false),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if required => return Err(format!("cannot read baseline {}: {e}", path.display())),
        Err(_) => return Ok(Vec::new()),
    };
    let mut out = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match line.split_once(char::is_whitespace) {
            Some((rule, path)) if lint::RULES.contains(&rule.trim()) => {
                out.push((rule.trim().to_string(), path.trim().to_string()));
            }
            _ => {
                return Err(format!(
                    "baseline {}:{}: expected `<rule> <path>`, got `{line}`",
                    path.display(),
                    n + 1
                ))
            }
        }
    }
    Ok(out)
}

/// The workspace root: walk up from the manifest dir (or cwd) to the
/// directory whose `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

/// Recursively collects `.rs` files, skipping build output and VCS dirs.
fn collect_rust_files(path: &Path, out: &mut Vec<PathBuf>) {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if matches!(name, "target" | ".git" | "node_modules") {
        return;
    }
    if path.is_dir() {
        let Ok(entries) = std::fs::read_dir(path) else {
            return;
        };
        for entry in entries.flatten() {
            collect_rust_files(&entry.path(), out);
        }
    } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
        out.push(path.to_path_buf());
    }
}
