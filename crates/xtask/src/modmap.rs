//! The module map: one declarative table assigning workspace paths to
//! lint *zones*, replacing the ad-hoc `path_in_*` predicates that used
//! to be scattered through the rules.
//!
//! A zone is a scope a rule keys off: test code is exempt from the code
//! rules, only the parallel runtime may create OS threads, and only the
//! lattice-walk modules are held to the budget-checkpoint rules. The
//! table is data, not code, so adding a module to a zone is a one-line
//! diff reviewed next to the map — see DESIGN.md §7.1 for the rendered
//! version.

/// A lint scope some rules restrict themselves to (or exempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zone {
    /// Test-only code: exempt from every code-level rule.
    TestCode,
    /// The work-stealing pool — the one place allowed to spawn threads.
    ParallelRuntime,
    /// Lattice-walk modules whose loops must poll the governance token.
    LatticeModule,
    /// Partition/agree-set hot paths held to the flat CSR layout: nested
    /// `Vec<Vec<…>>` allocations there need a justification.
    HotPath,
    /// Snapshot-persistence code: every file mutation must go through
    /// the atomic tmp+fsync+rename helper so a crash can never leave a
    /// torn frame at the final path.
    SnapshotZone,
    /// Engine-facing code (the CLI, its binaries, and the bench bins):
    /// mining must dispatch through the `depminer-engine`
    /// `Session`/`MinerRegistry` layer, not call a concrete miner's
    /// governed entry points directly.
    EngineZone,
}

/// How one map entry matches a workspace-relative path (normalized to
/// `/` separators).
#[derive(Debug, Clone, Copy)]
pub enum Matcher {
    /// Any path segment equals one of these names (`tests`, `benches`…).
    Segment(&'static [&'static str]),
    /// The path starts with, or contains `/` followed by, this prefix —
    /// so both `crates/parallel/src/pool.rs` and an absolute path ending
    /// in the same suffix match.
    Subpath(&'static str),
    /// The path ends with this suffix.
    Suffix(&'static str),
}

/// The module map itself: every zone assignment in the workspace, in
/// one reviewable table.
pub const MODULE_MAP: &[(Matcher, Zone)] = &[
    (
        Matcher::Segment(&["tests", "benches", "examples", "fixtures"]),
        Zone::TestCode,
    ),
    (Matcher::Subpath("crates/parallel/"), Zone::ParallelRuntime),
    (
        Matcher::Suffix("crates/hypergraph/src/levelwise.rs"),
        Zone::LatticeModule,
    ),
    (
        Matcher::Suffix("crates/tane/src/exact.rs"),
        Zone::LatticeModule,
    ),
    (
        Matcher::Suffix("crates/tane/src/approx.rs"),
        Zone::LatticeModule,
    ),
    (
        Matcher::Suffix("crates/relation/src/partition.rs"),
        Zone::HotPath,
    ),
    (
        Matcher::Suffix("crates/relation/src/spdb.rs"),
        Zone::HotPath,
    ),
    (Matcher::Suffix("crates/core/src/agree.rs"), Zone::HotPath),
    (Matcher::Suffix("crates/tane/src/exact.rs"), Zone::HotPath),
    (Matcher::Suffix("crates/tane/src/approx.rs"), Zone::HotPath),
    (
        Matcher::Suffix("crates/govern/src/snapshot.rs"),
        Zone::SnapshotZone,
    ),
    (Matcher::Suffix("src/cli.rs"), Zone::EngineZone),
    (Matcher::Subpath("src/bin/"), Zone::EngineZone),
    (Matcher::Subpath("crates/bench/src/"), Zone::EngineZone),
];

/// `true` when `path` falls in `zone` according to [`MODULE_MAP`].
pub fn in_zone(path: &str, zone: Zone) -> bool {
    let norm = path.replace('\\', "/");
    MODULE_MAP
        .iter()
        .filter(|(_, z)| *z == zone)
        .any(|(m, _)| matches(m, &norm))
}

fn matches(matcher: &Matcher, norm: &str) -> bool {
    match matcher {
        Matcher::Segment(names) => norm.split('/').any(|seg| names.contains(&seg)),
        Matcher::Subpath(prefix) => {
            norm.starts_with(prefix) || norm.contains(&format!("/{prefix}"))
        }
        Matcher::Suffix(suffix) => norm.ends_with(suffix),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_by_segment() {
        assert!(in_zone("tests/cross_validation.rs", Zone::TestCode));
        assert!(in_zone("crates/bench/benches/micro.rs", Zone::TestCode));
        assert!(in_zone(
            "crates/xtask/tests/fixtures/x/fire.rs",
            Zone::TestCode
        ));
        assert!(!in_zone("crates/core/src/agree.rs", Zone::TestCode));
        // A file merely *named* tests.rs is not a test segment.
        assert!(!in_zone("crates/core/src/tests.rs", Zone::TestCode));
    }

    #[test]
    fn parallel_runtime_by_subpath() {
        assert!(in_zone(
            "crates/parallel/src/pool.rs",
            Zone::ParallelRuntime
        ));
        assert!(in_zone(
            "/abs/checkout/crates/parallel/src/scope.rs",
            Zone::ParallelRuntime
        ));
        assert!(!in_zone("crates/core/src/lhs.rs", Zone::ParallelRuntime));
    }

    #[test]
    fn lattice_modules_by_suffix() {
        for p in [
            "crates/hypergraph/src/levelwise.rs",
            "crates/tane/src/exact.rs",
            "crates/tane/src/approx.rs",
        ] {
            assert!(in_zone(p, Zone::LatticeModule), "{p}");
        }
        assert!(!in_zone("crates/tane/src/lib.rs", Zone::LatticeModule));
        // Backslash paths normalize.
        assert!(in_zone("crates\\tane\\src\\exact.rs", Zone::LatticeModule));
    }

    #[test]
    fn hot_path_modules_by_suffix() {
        for p in [
            "crates/relation/src/partition.rs",
            "crates/relation/src/spdb.rs",
            "crates/core/src/agree.rs",
            "crates/tane/src/exact.rs",
            "crates/tane/src/approx.rs",
        ] {
            assert!(in_zone(p, Zone::HotPath), "{p}");
        }
        assert!(!in_zone("crates/relation/src/relation.rs", Zone::HotPath));
        assert!(!in_zone("crates/core/src/lhs.rs", Zone::HotPath));
    }

    #[test]
    fn snapshot_zone_by_suffix() {
        assert!(in_zone("crates/govern/src/snapshot.rs", Zone::SnapshotZone));
        assert!(in_zone(
            "/abs/checkout/crates/govern/src/snapshot.rs",
            Zone::SnapshotZone
        ));
        assert!(!in_zone("crates/govern/src/lib.rs", Zone::SnapshotZone));
        assert!(!in_zone("src/cli.rs", Zone::SnapshotZone));
    }

    #[test]
    fn engine_zone_covers_cli_bins_and_bench() {
        for p in [
            "src/cli.rs",
            "src/bin/depminer.rs",
            "crates/bench/src/bin/resume_overhead.rs",
            "crates/bench/src/lib.rs",
            "/abs/checkout/src/cli.rs",
        ] {
            assert!(in_zone(p, Zone::EngineZone), "{p}");
        }
        // Library crates (including the engine itself) stay out: they
        // *implement* the entry points the zone polices.
        assert!(!in_zone("crates/engine/src/session.rs", Zone::EngineZone));
        assert!(!in_zone("crates/core/src/lib.rs", Zone::EngineZone));
        assert!(!in_zone("src/lib.rs", Zone::EngineZone));
    }
}
