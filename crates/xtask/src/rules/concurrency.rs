//! Flow-level concurrency rules: `par-closure-capture` (a static race
//! guard over the work-stealing pool's closures, backing DESIGN.md
//! §8.2's soundness argument) and `safety-comment` (every `unsafe`
//! needs an adjacent `// SAFETY:` justification).

use crate::flow::{self, Group, Node, SigTok};
use crate::lexer::TokenKind;
use crate::lint::{allowed, has_token, Diagnostic, ScrubbedLine};

/// The pool entry points whose closures run concurrently on worker
/// threads. A closure passed to any of these must not mutate captured
/// state.
const PAR_FNS: [&str; 6] = [
    "par_map",
    "par_map_indexed",
    "par_chunks",
    "par_map_governed",
    "par_map_indexed_governed",
    "par_chunks_governed",
];

/// Interior-mutability types (and the method that unlocks them) that are
/// not `Sync`-safe to share across pool workers.
const INTERIOR_MUT: [&str; 4] = ["RefCell", "Cell", "UnsafeCell", "borrow_mut"];

/// Rule `par-closure-capture`: inside a closure passed to a
/// [`PAR_FNS`] call, flags (a) `&mut` borrows of captured bindings,
/// (b) interior-mutability types, and (c) assignments to captured
/// bindings. Bindings local to the closure (parameters, `let`s, `for`
/// patterns) are fine — worker-local accumulation is the supported
/// pattern.
pub fn check_par_closure_capture(
    path: &str,
    sig: &[SigTok<'_>],
    tree: &[Node],
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let mut hits: Vec<(u32, String)> = Vec::new();
    scan_for_par_calls(tree, sig, &mut hits);
    for (line, message) in hits {
        let idx = line as usize - 1;
        if idx >= lines.len()
            || in_test.get(idx).copied().unwrap_or(false)
            || allowed(lines, idx, "par-closure-capture")
        {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line: line as usize,
            rule: "par-closure-capture",
            message,
        });
    }
}

/// Recursively finds `PAR_FNS` call sites and inspects their closure
/// arguments.
fn scan_for_par_calls(nodes: &[Node], sig: &[SigTok<'_>], hits: &mut Vec<(u32, String)>) {
    for (i, n) in nodes.iter().enumerate() {
        match n {
            Node::Tok(t) => {
                let tok = &sig[*t];
                if tok.kind == TokenKind::Ident && PAR_FNS.contains(&tok.text) {
                    if let Some(Node::Group(args)) = nodes.get(i + 1) {
                        if args.open == '(' {
                            inspect_call_args(args, sig, hits);
                        }
                    }
                }
            }
            Node::Group(g) => scan_for_par_calls(&g.children, sig, hits),
        }
    }
}

/// Walks one call's argument list, analyzing each closure found at the
/// top level of the arguments.
fn inspect_call_args(args: &Group, sig: &[SigTok<'_>], hits: &mut Vec<(u32, String)>) {
    let nodes = &args.children;
    let mut i = 0;
    while i < nodes.len() {
        if !flow::closure_starts_at(nodes, i, sig) {
            // Nested calls inside the arguments may themselves be
            // par calls; the outer scan already recurses into groups.
            i += 1;
            continue;
        }
        if matches!(flow::tok_text(&nodes[i], sig), Some("move")) {
            i += 1;
        }
        // Parameter list.
        let params_start = i + 1;
        let mut j = params_start;
        while j < nodes.len() && !matches!(flow::tok_text(&nodes[j], sig), Some("|")) {
            j += 1;
        }
        let params = &nodes[params_start..j.min(nodes.len())];
        let body_start = (j + 1).min(nodes.len());
        // Body: a brace group, or expression nodes to the top-level `,`.
        let mut k = body_start;
        let body: &[Node] = match nodes.get(body_start) {
            Some(Node::Group(g)) if g.open == '{' => {
                k = body_start + 1;
                &g.children
            }
            _ => {
                while k < nodes.len() && !matches!(flow::tok_text(&nodes[k], sig), Some(",")) {
                    k += 1;
                }
                &nodes[body_start..k]
            }
        };
        analyze_closure(params, body, sig, hits);
        i = k.max(body_start + 1);
    }
}

/// Checks one closure: collects its local bindings, then flags captures
/// that are mutated, `&mut`-borrowed, or interior-mutable.
fn analyze_closure(
    params: &[Node],
    body: &[Node],
    sig: &[SigTok<'_>],
    hits: &mut Vec<(u32, String)>,
) {
    let mut locals: Vec<&str> = Vec::new();
    collect_param_idents(params, sig, &mut locals);
    collect_locals(body, sig, &mut locals);
    find_violations(body, sig, &locals, hits);
}

/// Every identifier in a parameter/pattern position is a closure local
/// (type names sneak in too, which is harmless).
fn collect_param_idents<'a>(nodes: &[Node], sig: &[SigTok<'a>], out: &mut Vec<&'a str>) {
    for n in nodes {
        match n {
            Node::Tok(t) if sig[*t].kind == TokenKind::Ident => {
                if !matches!(sig[*t].text, "mut" | "ref") {
                    out.push(sig[*t].text);
                }
            }
            Node::Tok(_) => {}
            Node::Group(g) => collect_param_idents(&g.children, sig, out),
        }
    }
}

/// Collects `let`, `for`, and nested-closure bindings anywhere in the
/// body (a flat approximation of scoping: order and shadowing are
/// ignored, which can only make the rule more permissive).
fn collect_locals<'a>(nodes: &[Node], sig: &[SigTok<'a>], out: &mut Vec<&'a str>) {
    let mut i = 0;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Tok(t) => {
                match sig[*t].text {
                    // `let PAT (: TY)? = …` / `if let PAT = …`: idents up
                    // to the `=` (or `;`) are bindings (type names are
                    // harmless extras).
                    "let" => {
                        let mut j = i + 1;
                        while j < nodes.len() {
                            match &nodes[j] {
                                Node::Tok(t2) if matches!(sig[*t2].text, "=" | ";") => break,
                                Node::Tok(t2) if sig[*t2].kind == TokenKind::Ident => {
                                    if !matches!(sig[*t2].text, "mut" | "ref") {
                                        out.push(sig[*t2].text);
                                    }
                                    j += 1;
                                }
                                Node::Tok(_) => j += 1,
                                Node::Group(g) => {
                                    collect_param_idents(&g.children, sig, out);
                                    j += 1;
                                }
                            }
                        }
                        i = j;
                    }
                    // `for PAT in …`: idents up to the `in`.
                    "for" => {
                        let mut j = i + 1;
                        while j < nodes.len() {
                            match &nodes[j] {
                                Node::Tok(t2) if sig[*t2].text == "in" => break,
                                Node::Tok(t2) if sig[*t2].kind == TokenKind::Ident => {
                                    if !matches!(sig[*t2].text, "mut" | "ref") {
                                        out.push(sig[*t2].text);
                                    }
                                    j += 1;
                                }
                                Node::Tok(_) => j += 1,
                                Node::Group(g) => {
                                    collect_param_idents(&g.children, sig, out);
                                    j += 1;
                                }
                            }
                        }
                        i = j;
                    }
                    _ => {
                        // Nested closure: its parameters are locals too.
                        if flow::closure_starts_at(nodes, i, sig) {
                            let mut j = i + 1;
                            while j < nodes.len()
                                && !matches!(flow::tok_text(&nodes[j], sig), Some("|"))
                            {
                                if let Node::Tok(t2) = &nodes[j] {
                                    if sig[*t2].kind == TokenKind::Ident
                                        && !matches!(sig[*t2].text, "mut" | "ref")
                                    {
                                        out.push(sig[*t2].text);
                                    }
                                }
                                j += 1;
                            }
                            i = j;
                        }
                        i += 1;
                    }
                }
            }
            Node::Group(g) => {
                collect_locals(&g.children, sig, out);
                i += 1;
            }
        }
    }
}

/// Rust keywords that can never be assignment receivers.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

/// Scans a closure body for the three violation shapes.
fn find_violations(
    nodes: &[Node],
    sig: &[SigTok<'_>],
    locals: &[&str],
    hits: &mut Vec<(u32, String)>,
) {
    let mut i = 0;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Tok(t) => {
                let tok = &sig[*t];
                // (b) interior mutability anywhere in the closure.
                if tok.kind == TokenKind::Ident && INTERIOR_MUT.contains(&tok.text) {
                    hits.push((
                        tok.line,
                        format!(
                            "`{}` inside a parallel closure; interior mutability is not race-safe across pool workers — accumulate into a closure-local value instead",
                            tok.text
                        ),
                    ));
                    i += 1;
                    continue;
                }
                // (a) `&mut upvar`.
                if tok.text == "&" && matches!(flow::tok_text_at(nodes, i + 1, sig), Some("mut")) {
                    if let Some(name) = flow::tok_text_at(nodes, i + 2, sig) {
                        let kind_ok = matches!(nodes.get(i + 2), Some(Node::Tok(t2)) if sig[*t2].kind == TokenKind::Ident);
                        if kind_ok && !is_keyword(name) && !locals.contains(&name) {
                            hits.push((
                                tok.line,
                                format!(
                                    "`&mut {name}` borrows a captured binding inside a parallel closure; pool workers would race on it"
                                ),
                            ));
                            i += 3;
                            continue;
                        }
                    }
                }
                // (c) assignment to a captured binding: `name = …`,
                // `name += …`, `name.field = …`, `name[i] = …`, `*name = …`.
                if tok.kind == TokenKind::Ident && !is_keyword(tok.text) {
                    let prev = i
                        .checked_sub(1)
                        .and_then(|p| flow::tok_text(&nodes[p], sig));
                    let is_decl = matches!(prev, Some("let" | "mut" | "ref" | "." | "::" | ":"));
                    if !is_decl {
                        if let Some(line) = assignment_after(nodes, i + 1, sig) {
                            if !locals.contains(&tok.text) {
                                hits.push((
                                    line,
                                    format!(
                                        "assignment to captured binding `{}` inside a parallel closure; pool workers would race on it",
                                        tok.text
                                    ),
                                ));
                            }
                        }
                    }
                }
                i += 1;
            }
            Node::Group(g) => {
                find_violations(&g.children, sig, locals, hits);
                i += 1;
            }
        }
    }
}

/// After a receiver identifier at `start - 1`, skips field/index
/// accesses (`.f`, `[…]`) and reports the line of a following
/// assignment operator, if any. Comparison (`==`, `<=`, `>=`), match
/// arrows (`=>`), and shift-compares are excluded.
fn assignment_after(nodes: &[Node], start: usize, sig: &[SigTok<'_>]) -> Option<u32> {
    let mut j = start;
    // Field / index chain.
    loop {
        match (nodes.get(j), nodes.get(j + 1)) {
            (Some(a), Some(b))
                if matches!(flow::tok_text(a, sig), Some("."))
                    && matches!(b, Node::Tok(t) if matches!(sig[*t].kind, TokenKind::Ident | TokenKind::Num)) =>
            {
                j += 2;
            }
            (Some(Node::Group(g)), _) if g.open == '[' => j += 1,
            _ => break,
        }
    }
    let text = |k: usize| flow::tok_text_at(nodes, k, sig);
    match text(j) {
        // Plain `=`: not `==`, not `=>`.
        Some("=") if !matches!(text(j + 1), Some("=" | ">")) => {
            Some(flow::node_line_at(nodes, j, sig))
        }
        // Compound `op=`: `+= -= *= /= %= &= |= ^=`.
        Some(op @ ("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"))
            if matches!(text(j + 1), Some("=")) && !matches!(text(j + 2), Some("=")) =>
        {
            // `&&`/`||` short-circuit chains (`a && b = …` is not valid
            // Rust anyway); `a & = ` can only be compound-assign.
            let _ = op;
            Some(flow::node_line_at(nodes, j, sig))
        }
        // Shifts: `<<=` / `>>=` (single `<=`/`>=` are comparisons).
        Some(op @ ("<" | ">"))
            if text(j + 1) == Some(op)
                && matches!(text(j + 2), Some("="))
                && !matches!(text(j + 3), Some("=")) =>
        {
            Some(flow::node_line_at(nodes, j, sig))
        }
        _ => None,
    }
}

/// Rule `safety-comment`: every `unsafe` block, `unsafe fn`, and
/// `unsafe impl` in library code needs a `// SAFETY:` justification — a
/// trailing comment on the same line, or a contiguous comment block
/// immediately above the statement the `unsafe` belongs to.
pub fn check_safety_comment(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "safety-comment") {
            continue;
        }
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        if justified(lines, idx) {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line: idx + 1,
            rule: "safety-comment",
            message: "`unsafe` without an adjacent `// SAFETY:` comment justifying why the invariants hold".to_string(),
        });
    }
}

/// `true` when the `unsafe` on line `idx` carries a SAFETY comment: on
/// the line itself, or in the contiguous comment block above the start
/// of the enclosing statement (continuation lines — those whose
/// *predecessor* does not end a statement — are walked through).
fn justified(lines: &[ScrubbedLine], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY") {
        return true;
    }
    // Find the statement start: walk up while the previous line is code
    // that flows into this one (no terminator) or an attribute.
    let mut s = idx;
    while s > 0 {
        let prev = lines[s - 1].code.trim_end();
        let prev_trimmed = prev.trim_start();
        let continues = !prev.is_empty()
            && !prev.ends_with(';')
            && !prev.ends_with('{')
            && !prev.ends_with('}')
            && !prev_trimmed.is_empty();
        let is_attr = prev_trimmed.starts_with("#[") || prev_trimmed.starts_with("#![");
        if continues || is_attr {
            s -= 1;
        } else {
            break;
        }
    }
    // Contiguous comment-only lines above the statement.
    let mut k = s;
    while k > 0 {
        let prev = &lines[k - 1];
        if prev.code.trim().is_empty() && !prev.comment.is_empty() {
            if prev.comment.contains("SAFETY") {
                return true;
            }
            k -= 1;
        } else {
            break;
        }
    }
    false
}
