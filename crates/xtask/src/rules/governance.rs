//! Flow-level governance rules: `budget-coverage` (the control-flow
//! upgrade of `unchecked-loop`, proving a checkpoint on *all* paths
//! through a lattice loop body), `partial-contract` (functions
//! returning `MiningOutcome` must thread a `StageReport`), and
//! `span-coverage` (every `*_governed` mining stage must open an
//! observe span or delegate to a governed helper that does).

use super::CHECKPOINT_TOKENS;
use crate::flow::{self, Node, SigTok};
use crate::lexer::TokenKind;
use crate::lint::{allowed, Diagnostic, ScrubbedLine};
use crate::modmap::{in_zone, Zone};

fn is_checkpoint(text: &str) -> bool {
    CHECKPOINT_TOKENS.contains(&text)
}

/// Rule `budget-coverage`: in a lattice module, every `while`/`loop`
/// body must reach a [`CHECKPOINT_TOKENS`] call on *every* path through
/// one iteration — a checkpoint only in one `if` branch still lets the
/// other path spin past the budget. Levelwise `for` loops (iterating an
/// expression that names a level or candidate set, and not nested in an
/// already-checkpointed loop) are held to the same bar.
///
/// Division of labor with `unchecked-loop`: that rule fires when a
/// `while`/`loop` has *no* checkpoint anywhere; this rule fires when
/// checkpoints exist but miss a path. They never both fire on one loop.
pub fn check_budget_coverage(
    path: &str,
    sig: &[SigTok<'_>],
    tree: &[Node],
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if !in_zone(path, Zone::LatticeModule) {
        return;
    }
    for lp in flow::find_loops(tree, sig) {
        let idx = lp.line as usize - 1;
        if idx >= lines.len()
            || in_test.get(idx).copied().unwrap_or(false)
            || allowed(lines, idx, "budget-coverage")
        {
            continue;
        }
        let covered = flow::always_calls(&lp.body.children, sig, &is_checkpoint);
        if covered {
            continue;
        }
        match lp.keyword {
            "while" | "loop" => {
                // Only fire when `unchecked-loop` stays silent: a
                // checkpoint is mentioned somewhere, just not on every
                // path.
                let mentioned = flow::mentions(&lp.body.children, sig, &is_checkpoint);
                if mentioned {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: lp.line as usize,
                        rule: "budget-coverage",
                        message: format!(
                            "`{}` body polls a budget checkpoint on some paths but not all; an uncheckpointed branch can spin past the budget — hoist the poll to the top of the body",
                            lp.keyword
                        ),
                    });
                }
            }
            _ => {
                // A levelwise `for`: required only at the outermost
                // level (an enclosing loop already owns the checkpoint)
                // and only when the iterated expression names a
                // level/candidate collection.
                if lp.nested {
                    continue;
                }
                let levelwise = lp
                    .iterated_idents
                    .iter()
                    .any(|id| id.contains("level") || id.contains("candidate"));
                if levelwise {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: lp.line as usize,
                        rule: "budget-coverage",
                        message: "levelwise `for` over a level/candidate collection with no budget checkpoint on every path; poll a `CancelToken` method in the body".to_string(),
                    });
                }
            }
        }
    }
}

/// Identifiers in a function body that satisfy the partial-results
/// contract: constructing/propagating a report, or delegating to a
/// governed helper.
fn satisfies_contract(text: &str) -> bool {
    text == "StageReport"
        || text == "stages"
        || text.ends_with("_governed")
        || text.ends_with("_with_token")
}

/// Rule `partial-contract`: a function whose return type names
/// `MiningOutcome` must construct or propagate a `StageReport` (or
/// delegate to a `*_governed` / `*_with_token` helper that does).
/// Otherwise the result silently claims totality with an empty stage
/// account.
pub fn check_partial_contract(
    path: &str,
    sig: &[SigTok<'_>],
    tree: &[Node],
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let mut fns: Vec<(u32, String)> = Vec::new();
    scan_fns(tree, sig, &mut fns);
    for (line, name) in fns {
        let idx = line as usize - 1;
        if idx >= lines.len()
            || in_test.get(idx).copied().unwrap_or(false)
            || allowed(lines, idx, "partial-contract")
        {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line: line as usize,
            rule: "partial-contract",
            message: format!(
                "`fn {name}` returns `MiningOutcome` but never constructs or propagates a `StageReport`; partial results must carry an honest stage account"
            ),
        });
    }
}

/// Identifiers in a `*_governed` body that satisfy the span obligation:
/// opening an observe span directly (`.span(…)` binds a `SpanGuard`), or
/// delegating to another governed / token-threading helper that owns the
/// span. Parallel-runtime fan-out helpers (`par_*`) distribute work but
/// own no mining stage, so calling one is *not* delegation.
fn satisfies_span(text: &str) -> bool {
    text == "span"
        || (!text.starts_with("par_")
            && (text.ends_with("_governed") || text.ends_with("_with_token")))
}

/// Rule `span-coverage`: a function named `*_governed` is a mining stage
/// running under the governance token; it must open an observe span or
/// delegate to a governed/with-token helper that does. A stage without a
/// span is invisible to `depminer --profile` and the §5.3 phase tables,
/// which silently misattribute its time to the parent.
///
/// The parallel runtime is exempt: its `par_*_governed` helpers are
/// fan-out plumbing, not stages.
pub fn check_span_coverage(
    path: &str,
    sig: &[SigTok<'_>],
    tree: &[Node],
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if in_zone(path, Zone::ParallelRuntime) {
        return;
    }
    let mut fns: Vec<(u32, String)> = Vec::new();
    scan_governed_fns(tree, sig, &mut fns);
    for (line, name) in fns {
        let idx = line as usize - 1;
        if idx >= lines.len()
            || in_test.get(idx).copied().unwrap_or(false)
            || allowed(lines, idx, "span-coverage")
        {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line: line as usize,
            rule: "span-coverage",
            message: format!(
                "`fn {name}` is a governed mining stage but never opens an observe span (nor delegates to a governed helper that does); the stage is invisible to `--profile`"
            ),
        });
    }
}

/// Finds `fn` items named `*_governed` whose bodies never satisfy the
/// span obligation, recursively.
fn scan_governed_fns(nodes: &[Node], sig: &[SigTok<'_>], out: &mut Vec<(u32, String)>) {
    let mut i = 0;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Tok(t) if sig[*t].text == "fn" && sig[*t].kind == TokenKind::Ident => {
                let line = sig[*t].line;
                let name = match nodes.get(i + 1) {
                    Some(Node::Tok(t2)) if sig[*t2].kind == TokenKind::Ident => sig[*t2].text,
                    _ => "?",
                };
                // Skip the signature to the body `{` or a `;` (trait decl).
                let mut j = i + 1;
                let mut body: Option<&Node> = None;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Tok(t2) if sig[*t2].text == ";" => break,
                        Node::Tok(_) => j += 1,
                        Node::Group(g) if g.open == '{' => {
                            body = Some(&nodes[j]);
                            break;
                        }
                        Node::Group(_) => j += 1,
                    }
                }
                if let Some(Node::Group(g)) = body {
                    let governed = name.ends_with("_governed") && !name.starts_with("par_");
                    if governed && !flow::mentions(&g.children, sig, &satisfies_span) {
                        out.push((line, name.to_string()));
                    }
                    // Recurse for nested fns regardless of the name.
                    scan_governed_fns(&g.children, sig, out);
                }
                i = j + 1;
            }
            Node::Tok(_) => i += 1,
            Node::Group(g) => {
                scan_governed_fns(&g.children, sig, out);
                i += 1;
            }
        }
    }
}

/// Finds `fn` items returning `MiningOutcome` whose bodies violate the
/// contract, recursively.
fn scan_fns(nodes: &[Node], sig: &[SigTok<'_>], out: &mut Vec<(u32, String)>) {
    let mut i = 0;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Tok(t) if sig[*t].text == "fn" && sig[*t].kind == TokenKind::Ident => {
                let line = sig[*t].line;
                let name = match nodes.get(i + 1) {
                    Some(Node::Tok(t2)) if sig[*t2].kind == TokenKind::Ident => sig[*t2].text,
                    _ => "?",
                };
                // Signature runs to the body `{` or a `;` (trait decl).
                let mut returns_outcome = false;
                let mut seen_arrow = false;
                let mut j = i + 1;
                let mut body: Option<&Node> = None;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Tok(t2) => {
                            let txt = sig[*t2].text;
                            if txt == ";" {
                                break;
                            }
                            if txt == "-"
                                && matches!(flow::tok_text_at(nodes, j + 1, sig), Some(">"))
                            {
                                seen_arrow = true;
                                j += 2;
                                continue;
                            }
                            if seen_arrow && txt == "MiningOutcome" {
                                returns_outcome = true;
                            }
                            j += 1;
                        }
                        Node::Group(g) if g.open == '{' => {
                            body = Some(&nodes[j]);
                            break;
                        }
                        Node::Group(_) => j += 1,
                    }
                }
                if let Some(Node::Group(g)) = body {
                    if returns_outcome && !flow::mentions(&g.children, sig, &satisfies_contract) {
                        out.push((line, name.to_string()));
                    }
                    // Recurse for nested fns regardless of return type.
                    scan_fns(&g.children, sig, out);
                }
                i = j + 1;
            }
            Node::Tok(_) => i += 1,
            Node::Group(g) => {
                scan_fns(&g.children, sig, out);
                i += 1;
            }
        }
    }
}
