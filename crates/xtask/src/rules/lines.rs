//! The scrubbed-line rules: the original seven checks, operating on the
//! per-line code/comment views produced by [`crate::lint`]'s scrubber
//! (which is itself built on the lossless [`crate::lexer`]).

use super::CHECKPOINT_TOKENS;
use crate::lint::{allowed, has_token, Diagnostic, ScrubbedLine};
use crate::modmap::{in_zone, Zone};

/// Rule `no-panic`: `.unwrap()`, `.expect("")`, and `panic!` are banned in
/// library code. `.expect("a real message")` is allowed — the message is
/// the justification.
pub fn check_no_panic(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "no-panic") {
            continue;
        }
        let mut hit = |message: &str| {
            out.push(Diagnostic {
                path: path.to_string(),
                line: idx + 1,
                rule: "no-panic",
                message: message.to_string(),
            })
        };
        if line.code.contains(".unwrap()") {
            hit("`.unwrap()` in library code; return a Result or use `.expect(\"why\")`");
        }
        if line.code.contains(".expect(\"\")") {
            hit("`.expect(\"\")` with an empty message; say why the value must exist");
        }
        if has_token(&line.code, "panic!") {
            hit("`panic!` in library code; return an error instead");
        }
    }
}

/// Rule `default-hasher`: `HashMap`/`HashSet` tokens mean the SipHash
/// default hasher; library code must use the in-tree `FxHashMap` /
/// `FxHashSet` (identifier-bounded, so the `Fx` types don't match).
pub fn check_default_hasher(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "default-hasher") {
            continue;
        }
        for token in ["HashMap", "HashSet"] {
            if has_token(&line.code, token) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: idx + 1,
                    rule: "default-hasher",
                    message: format!(
                        "`{token}` uses the default SipHash hasher; use `Fx{token}` from depminer_relation::fxhash"
                    ),
                });
            }
        }
    }
}

/// Rule `unordered-iter`: a `for` loop over a hash container that pushes
/// into a result collection, with no `.sort` in sight, yields
/// nondeterministic output order.
///
/// Heuristic: pass 1 collects `let` bindings whose declared type or
/// initializer names a hash type; pass 2 finds `for … in` loops over
/// those variables (or over direct `.keys()`/`.values()` calls on them)
/// whose body contains `.push(`/`.extend(`, and requires a `.sort` within
/// the loop body or the 12 lines after it.
pub fn check_unordered_iter(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    // Pass 1: hash-typed variable names.
    let mut hashy: Vec<String> = Vec::new();
    for line in lines {
        let code = line.code.trim_start();
        let Some(rest) = code
            .strip_prefix("let mut ")
            .or_else(|| code.strip_prefix("let "))
        else {
            continue;
        };
        let is_hash_ty = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"]
            .iter()
            .any(|t| has_token(code, t));
        if !is_hash_ty {
            continue;
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && !hashy.contains(&name) {
            hashy.push(name);
        }
    }
    if hashy.is_empty() {
        return;
    }

    // Pass 2: loops over those variables.
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "unordered-iter") {
            continue;
        }
        let code = line.code.trim_start();
        if !code.starts_with("for ") {
            continue;
        }
        let Some(in_pos) = code.find(" in ") else {
            continue;
        };
        let iterated = &code[in_pos + 4..];
        if !is_hash_iteration(iterated, &hashy) {
            continue;
        }
        // Loop body extent by brace matching.
        let (_, end) = brace_extent(lines, idx);
        let body = &lines[idx..=end];
        let pushes = body
            .iter()
            .any(|l| l.code.contains(".push(") || l.code.contains(".extend("));
        if !pushes {
            continue;
        }
        let window_end = (end + 13).min(lines.len());
        let sorted = lines[idx..window_end]
            .iter()
            .any(|l| l.code.contains(".sort"));
        if !sorted {
            out.push(Diagnostic {
                path: path.to_string(),
                line: idx + 1,
                rule: "unordered-iter",
                message: "hash-container iteration feeds an ordered collection with no `.sort` nearby; output order is nondeterministic".to_string(),
            });
        }
    }
}

/// `true` when a `for`-loop head iterates a hash container *directly*
/// (`for x in &map`, `for k in map.keys()`, …). Indexing into a map
/// (`map[&k].iter()`) iterates the *value*, whose order is the value
/// type's business, so it does not count.
fn is_hash_iteration(iterated: &str, hashy: &[String]) -> bool {
    let mut expr = iterated.trim();
    for prefix in ["&mut ", "&"] {
        if let Some(rest) = expr.strip_prefix(prefix) {
            expr = rest;
        }
    }
    let expr = expr.trim_start_matches('(').trim_end();
    let expr = expr.strip_suffix('{').unwrap_or(expr).trim_end();
    for name in hashy {
        let Some(rest) = expr.strip_prefix(name.as_str()) else {
            continue;
        };
        if rest.is_empty() {
            return true;
        }
        const ITERS: [&str; 7] = [
            ".iter()",
            ".iter_mut()",
            ".keys()",
            ".values()",
            ".values_mut()",
            ".drain()",
            ".into_iter()",
        ];
        if ITERS.contains(&rest) {
            return true;
        }
    }
    false
}

/// Rule `attr-count`: a hardcoded `128` on a line talking about
/// attributes or arity should be `AttrSet::MAX_ATTRS`.
pub fn check_attr_count(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "attr-count") {
            continue;
        }
        let code = &line.code;
        if !has_token(code, "128") || code.contains("MAX_ATTRS") {
            continue;
        }
        let lower = code.to_ascii_lowercase();
        if lower.contains("attr") || lower.contains("arity") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: idx + 1,
                rule: "attr-count",
                message: "hardcoded attribute-count literal 128; use `AttrSet::MAX_ATTRS`"
                    .to_string(),
            });
        }
    }
}

/// Rule `raw-thread-spawn`: raw thread creation (`thread::spawn`,
/// `thread::Builder`) is confined to `crates/parallel`. Everywhere else
/// must go through the work-stealing pool's scoped API, so thread counts
/// honor the `Parallelism` knob and the `DEPMINER_THREADS` override, and
/// panics propagate instead of killing detached threads.
pub fn check_raw_thread_spawn(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if in_zone(path, Zone::ParallelRuntime) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "raw-thread-spawn") {
            continue;
        }
        for token in ["thread::spawn", "thread::Builder"] {
            if has_token(&line.code, token) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: idx + 1,
                    rule: "raw-thread-spawn",
                    message: format!(
                        "`{token}` outside crates/parallel; use the depminer-parallel pool (scope/par_map) so `DEPMINER_THREADS` and panic propagation apply"
                    ),
                });
            }
        }
    }
}

/// Rule `unchecked-loop`: a `while`/`loop` in the levelwise/lattice
/// modules ([`Zone::LatticeModule`]) whose body never mentions a
/// [`CHECKPOINT_TOKENS`] method can run unbounded past any budget. A loop
/// that is genuinely bounded (or an ungoverned test oracle) carries a
/// `// lint: allow(unchecked-loop)` marker saying so. The stricter
/// all-paths version of this check is the flow-level `budget-coverage`
/// rule.
pub fn check_unchecked_loop(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if !in_zone(path, Zone::LatticeModule) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "unchecked-loop") {
            continue;
        }
        let mut head = line.code.trim_start();
        // Strip a loop label (`'levels: while …`).
        if head.starts_with('\'') {
            match head.split_once(':') {
                Some((_, rest)) => head = rest.trim_start(),
                None => continue,
            }
        }
        let is_loop_head = head.starts_with("while ")
            || head.starts_with("while(")
            || head == "loop"
            || head.starts_with("loop ")
            || head.starts_with("loop{");
        if !is_loop_head {
            continue;
        }
        let (_, end) = brace_extent(lines, idx);
        let checkpointed = lines[idx..=end]
            .iter()
            .any(|l| CHECKPOINT_TOKENS.iter().any(|t| has_token(&l.code, t)));
        if !checkpointed {
            out.push(Diagnostic {
                path: path.to_string(),
                line: idx + 1,
                rule: "unchecked-loop",
                message: "`while`/`loop` in a lattice module with no budget checkpoint; poll a `CancelToken` method (check/enter_level/add_candidates/…) in the body".to_string(),
            });
        }
    }
}

/// Rule `raw-snapshot-write`: in the snapshot-persistence zone
/// ([`Zone::SnapshotZone`]) every file mutation must go through the
/// atomic helper (`.tmp` sibling + `fsync` + rename + directory fsync)
/// so a crash mid-write can never leave a torn frame at the final
/// path — a torn frame wastes the user's checkpoint even though the
/// codec would refuse it. Direct `fs::write`, `File::create`,
/// `OpenOptions` and `fs::rename` calls are flagged; the helper's own
/// internals carry `// lint: allow(raw-snapshot-write)` markers.
pub fn check_raw_snapshot_write(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if !in_zone(path, Zone::SnapshotZone) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "raw-snapshot-write") {
            continue;
        }
        for token in ["fs::write", "File::create", "OpenOptions", "fs::rename"] {
            if has_token(&line.code, token) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: idx + 1,
                    rule: "raw-snapshot-write",
                    message: format!(
                        "`{token}` in the snapshot zone bypasses the atomic writer; use `atomic_write` (tmp + fsync + rename) so a crash cannot tear the frame at its final path"
                    ),
                });
            }
        }
    }
}

/// Rule `nested-alloc`: a `Vec<Vec<…>>` in a hot-path module
/// ([`Zone::HotPath`]) is a jagged heap-of-heaps where the flat CSR
/// forms (`FlatPartition`, `EquivalenceClassIds`, or a payload+offsets
/// pair) belong. The match is whitespace-insensitive (so
/// `Vec < Vec <` and `Vec<\n    Vec<` spellings still count) but
/// string/comment-safe via the scrubbed view. Boundary types and
/// pedagogical nested forms carry a `// lint: allow(nested-alloc)`
/// marker with a justification; adopting the rule on a tree with known
/// debt goes through `xtask-baseline.txt` instead.
pub fn check_nested_alloc(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if !in_zone(path, Zone::HotPath) {
        return;
    }
    // A declaration can split across lines (`Vec<` at the end of one,
    // `Vec<` at the start of the next), so the scan joins each line with
    // its successor before squashing whitespace; the finding lands on
    // the first line of the pair.
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "nested-alloc") {
            continue;
        }
        let mut joined = line.code.clone();
        if let Some(next) = lines.get(idx + 1) {
            joined.push_str(&next.code);
        }
        let squashed: String = joined.chars().filter(|c| !c.is_whitespace()).collect();
        // Only report the pair's first line: a hit that starts on the
        // next line is that line's own finding.
        let own: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        let starts_here = match squashed.find("Vec<Vec<") {
            Some(pos) => pos < own.len(),
            None => false,
        };
        if starts_here {
            out.push(Diagnostic {
                path: path.to_string(),
                line: idx + 1,
                rule: "nested-alloc",
                message: "nested `Vec<Vec<…>>` in a hot-path module; use the flat CSR layout (payload + offsets, e.g. `FlatPartition`) or justify with `// lint: allow(nested-alloc)`".to_string(),
            });
        }
    }
}

/// The governed mining entry points a concrete miner exposes. Calling
/// any of them from engine-facing code bypasses the `Session` driver
/// (shared interrupted/partial reporting, invariant audit, snapshot
/// routing), which is exactly the duplication the engine layer removed.
const ENGINE_ENTRY_TOKENS: [&str; 9] = [
    "mine_governed",
    "mine_with_token",
    "mine_db_governed",
    "run_governed",
    "run_with_token",
    "run_db_governed",
    "resume_governed",
    "approximate_fds_governed",
    "resume_approximate_fds_governed",
];

/// Rule `engine-bypass`: in engine-facing code ([`Zone::EngineZone`] —
/// the CLI, its binaries, and the bench bins) mining goes through the
/// `depminer-engine` `Session`/`MinerRegistry` layer. A direct call to
/// a concrete miner's governed entry point re-grows the per-command
/// plumbing (interrupted reporting, audits, snapshot routing) the
/// engine centralizes. Deliberate baselines — e.g. a bench measuring
/// the dispatch overhead *against* the direct call — carry a
/// `// lint: allow(engine-bypass)` marker saying so.
pub fn check_engine_bypass(
    path: &str,
    lines: &[ScrubbedLine],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if !in_zone(path, Zone::EngineZone) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || allowed(lines, idx, "engine-bypass") {
            continue;
        }
        for token in ENGINE_ENTRY_TOKENS {
            if has_token(&line.code, token) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: idx + 1,
                    rule: "engine-bypass",
                    message: format!(
                        "`{token}` called on a concrete miner in engine-facing code; dispatch through `Session`/`MinerRegistry` (depminer-engine), or justify a deliberate baseline with `// lint: allow(engine-bypass)`"
                    ),
                });
            }
        }
    }
}

/// Rule `header-hygiene`: every `lib.rs` must carry
/// `#![warn(missing_docs)]` (or the stricter `#![deny(warnings)]`) near
/// the top, so undocumented public items fail `cargo test` under the
/// workspace's warning policy.
pub fn check_header_hygiene(path: &str, lines: &[ScrubbedLine], out: &mut Vec<Diagnostic>) {
    let file = path.rsplit(['/', '\\']).next().unwrap_or(path);
    if file != "lib.rs" {
        return;
    }
    // Scan the header: doc comments, inner attributes, and blank lines.
    // The marker must appear before the first real item.
    let mut ok = false;
    for l in lines {
        let code = l.code.trim();
        if code.contains("#![warn(missing_docs)]") || code.contains("#![deny(warnings)]") {
            ok = true;
            break;
        }
        if !code.is_empty() && !code.starts_with("#!") {
            break;
        }
    }
    if !ok {
        out.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: "header-hygiene",
            message:
                "lib.rs must declare `#![warn(missing_docs)]` in its header, before the first item"
                    .to_string(),
        });
    }
}

/// Brace-matched extent of the construct starting at line `idx`:
/// `(idx, last_line)` inclusive.
fn brace_extent(lines: &[ScrubbedLine], idx: usize) -> (usize, usize) {
    let mut depth = 0usize;
    let mut opened = false;
    let mut end = idx;
    for (j, l) in lines.iter().enumerate().skip(idx) {
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if opened && depth == 0 {
            return (idx, j);
        }
        end = j;
    }
    (idx, end)
}
