//! Rule implementations, grouped by analysis level: `lines` holds the
//! scrubbed-line rules, `concurrency` and `governance` the flow-level
//! analyses built on [`crate::flow`].

pub mod concurrency;
pub mod governance;
pub mod lines;

/// Identifiers that count as a budget checkpoint: any `CancelToken`
/// method that can observe a trip, plus the governed parallel helpers
/// (which poll the token per chunk before any work runs).
pub const CHECKPOINT_TOKENS: [&str; 9] = [
    "check",
    "enter_level",
    "add_couples",
    "add_candidates",
    "reserve_memory",
    "is_cancelled",
    "par_map_governed",
    "par_map_indexed_governed",
    "par_chunks_governed",
];
