// Golden fixture: the escape hatch, for a loop whose bound is proved
// elsewhere (e.g. a test-only oracle over a tiny fixed arity).

fn bounded_by_arity(token: &CancelToken, mut level: Vec<u32>, par: bool) {
    // arity <= 8 in every caller; lint: allow(budget-coverage)
    while !level.is_empty() {
        if par {
            token.check(stage);
        }
        level.pop();
    }
}
