// Golden fixture: loops `budget-coverage` must flag. Linted under a
// lattice-module path by tests/golden.rs.

fn branch_only_poll(token: &CancelToken, mut level: Vec<u32>, par: bool) {
    while !level.is_empty() {
        if par {
            token.check(stage);
        }
        level.pop();
    }
}

fn uncovered_match_arm(token: &CancelToken, mut level: Vec<u32>) {
    loop {
        match level.pop() {
            Some(x) => {
                token.add_candidates(x as u64, stage);
            }
            None => break,
        }
    }
}

fn levelwise_for_without_poll(level: &[u32]) -> u32 {
    let mut total = 0;
    for &x in level {
        total += x;
    }
    total
}
