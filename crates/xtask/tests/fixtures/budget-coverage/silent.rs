// Golden fixture: checkpoint placements `budget-coverage` must accept.

fn poll_at_top_of_body(token: &CancelToken, mut level: Vec<u32>) {
    while !level.is_empty() {
        token.enter_level(level.len(), stage);
        level.pop();
    }
}

fn poll_in_every_branch(token: &CancelToken, mut level: Vec<u32>, par: bool) {
    while !level.is_empty() {
        if par {
            token.check(stage);
        } else {
            token.add_candidates(level.len() as u64, stage);
        }
        level.pop();
    }
}

fn governed_helper_covers(token: &CancelToken, level: &[u32], par: Par) {
    while !level.is_empty() {
        let flags = par_map_governed(par, token, stage, level, |&x| Ok(x > 0));
        consume(flags);
    }
}

fn inner_for_is_owned_by_outer_loop(token: &CancelToken, mut level: Vec<u32>) {
    while !level.is_empty() {
        token.check(stage);
        for &x in &level {
            touch(x);
        }
        level.pop();
    }
}

fn non_levelwise_for_is_exempt(rows: &[u32]) -> u32 {
    let mut total = 0;
    for &x in rows {
        total += x;
    }
    total
}
