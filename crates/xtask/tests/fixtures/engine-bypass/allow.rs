// Golden fixture: the escape hatch — a bench measuring the engine's
// dispatch overhead needs the direct call as its baseline, and names
// the rule next to it.

fn direct_baseline(r: &Relation, budget: &Budget) {
    // direct-call baseline the engine run is compared against;
    // lint: allow(engine-bypass)
    let _ = DepMiner::new().mine_governed(r, budget);
}

fn inline_marker(r: &Relation, token: &CancelToken) {
    let _ = Tane::new().run_with_token(r, token); // lint: allow(engine-bypass) — baseline
}
