// Golden fixture: direct governed entry-point calls `engine-bypass`
// must flag. Linted under the CLI path by tests/golden.rs.

fn mine_directly(r: &Relation, budget: &Budget) {
    let _ = DepMiner::new().mine_governed(r, budget);
}

fn token_spelling(r: &Relation, token: &CancelToken) {
    let _ = Tane::new().run_with_token(r, token);
}

fn resume_directly(r: &Relation, snap: &Snapshot, budget: &Budget) {
    let _ = Fdep::new().resume_governed(r, snap, budget, Obs::none(), None);
}

fn approx_directly(r: &Relation, token: &CancelToken) {
    let _ = approximate_fds_governed(r, 0.05, token);
}
