// Golden fixture: engine-facing code `engine-bypass` must not flag —
// Session/registry dispatch, the ungoverned `mine`/`run` spellings the
// report command uses, prose mentions, and test-module baselines.

fn blessed_dispatch(r: &Relation, registry: &MinerRegistry) {
    let session = Session::new(SessionCtx::new(r, Budget::unlimited(), Obs::none(), None));
    for entry in registry.all_entries() {
        let _ = session.run(entry.instantiate().as_ref());
    }
}

fn ungoverned_report(r: &Relation) {
    let result = DepMiner::new().mine(r);
    let _ = result.fds.len();
}

// Prose naming mine_governed is a comment, not a call.
fn commented() -> &'static str {
    "route mine_governed through the Session driver"
}

#[cfg(test)]
mod tests {
    fn oracle(r: &Relation, budget: &Budget) {
        let _ = Tane::new().run_governed(r, budget);
    }
}
