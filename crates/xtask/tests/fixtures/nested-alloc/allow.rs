// Golden fixture: the escape hatch, for a nested form that is the
// documented public boundary of an API rather than a hot-loop buffer.

// public MC boundary type; lint: allow(nested-alloc)
fn maximal_classes_boundary() -> Vec<Vec<u32>> {
    Vec::new()
}

fn inline_marker(n: usize) -> usize {
    let grid: Vec<Vec<u32>> = vec![Vec::new(); n]; // pedagogical form; lint: allow(nested-alloc)
    grid.len()
}
