// Golden fixture: nested allocations `nested-alloc` must flag. Linted
// under a hot-path module path by tests/golden.rs.

fn jagged_return(n: usize) -> Vec<Vec<u32>> {
    let mut grid = Vec::new();
    grid.resize(n, Vec::new());
    grid
}

fn spaced_declaration(n: usize) -> usize {
    let grid: Vec < Vec < u32 > > = vec![Vec::new(); n];
    grid.len()
}

fn split_across_lines() -> Vec<
    Vec<u32>,
> {
    Vec::new()
}
