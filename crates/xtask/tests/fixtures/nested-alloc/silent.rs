// Golden fixture: flat-layout code `nested-alloc` must not flag — CSR
// payload + offsets pairs, a Vec of scalars, comments and strings
// mentioning the nested spelling, and a test-module nested helper.

fn csr_walk(rows: &[u32], offsets: &[u32]) -> usize {
    offsets.windows(2).map(|w| (w[1] - w[0]) as usize).sum::<usize>() + rows.len()
}

fn flat_buffers(n: usize) -> (Vec<u32>, Vec<u32>) {
    (Vec::with_capacity(n), vec![0u32; n + 1])
}

// A comment spelling out Vec<Vec<u32>> is prose, not an allocation.
fn commented() -> &'static str {
    "the nested Vec<Vec<u32>> form is banned here"
}

#[cfg(test)]
mod tests {
    fn nested_oracle() -> Vec<Vec<u32>> {
        vec![vec![1, 2], vec![3]]
    }
}
