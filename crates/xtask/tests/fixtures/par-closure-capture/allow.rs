// Golden fixture: the escape hatch. The mutation is deliberate (a
// single-threaded test shim), so the marker suppresses the finding.

fn deliberate_capture(items: &[u32]) -> u32 {
    let mut total = 0u32;
    par_map(items, |x| {
        // sequential-mode shim, pool size forced to 1; lint: allow(par-closure-capture)
        total += x;
        total
    });
    total
}
