// Golden fixture: every shape `par-closure-capture` must flag.
// Linted under a synthetic library path by tests/golden.rs.

fn mutation_of_captured_binding(items: &[u32]) -> u32 {
    let mut total = 0u32;
    par_map(items, |x| {
        total += x;
        total
    });
    total
}

fn mut_borrow_of_upvar(items: &[u32], sink: &mut Vec<u32>) {
    par_chunks(items, 8, |chunk| {
        push_all(&mut sink, chunk);
    });
}

fn interior_mutability(items: &[u32], cell: &RefCell<u32>) {
    par_map_indexed(items, |i, x| {
        *cell.borrow_mut() += i as u32 + x;
    });
}
