// Golden fixture: supported parallel-closure patterns the rule must
// accept — worker-local accumulation, reads of captured state, and
// `&mut` on closure locals.

fn local_accumulator(items: &[u32]) -> Vec<u32> {
    par_map(items, |x| {
        let mut local = 0u32;
        local += x;
        local
    })
}

fn reads_captured_state(items: &[u32], table: &Table) -> Vec<u32> {
    par_chunks(items, 8, |chunk| {
        let mut found: Vec<u32> = Vec::new();
        for &i in chunk {
            if table.contains(i) {
                found.push(i);
            }
        }
        found
    })
}

fn mut_borrow_of_local(items: &[u32]) -> Vec<u32> {
    par_map(items, |x| {
        let mut scratch = Vec::new();
        fill(&mut scratch, x);
        scratch.len() as u32
    })
}

fn comparison_is_not_assignment(items: &[u32], limit: u32) -> Vec<bool> {
    par_map(items, |x| x <= limit && limit >= 1 && limit == 7)
}
