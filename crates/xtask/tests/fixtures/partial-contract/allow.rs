// Golden fixture: suppression for a trivial adapter that cannot be
// interrupted and therefore carries no stage accounting.

// infallible constant fold, nothing to report; lint: allow(partial-contract)
fn mine_constant() -> MiningOutcome<u32> {
    MiningOutcome::complete(0)
}
