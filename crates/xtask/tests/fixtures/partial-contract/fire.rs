// Golden fixture: functions returning `MiningOutcome` that never
// construct or propagate a `StageReport`.

fn mine_silent(rows: &[u32]) -> MiningOutcome<Vec<u32>> {
    let fds = rows.to_vec();
    MiningOutcome::complete(fds)
}

fn mine_nested(rows: &[u32]) -> MiningOutcome<u32> {
    let total = rows.iter().sum();
    MiningOutcome::complete(total)
}
