// Golden fixture: `MiningOutcome` producers that honour the partial-
// result contract — building a StageReport, touching `stages`, or
// delegating to a governed/with-token helper.

fn builds_report(rows: &[u32]) -> MiningOutcome<Vec<u32>> {
    let mut report = StageReport::default();
    report.note_rows(rows.len());
    MiningOutcome::complete_with(rows.to_vec(), report)
}

fn touches_stages(rows: &[u32], outcome: &mut MiningOutcome<u32>) -> MiningOutcome<u32> {
    outcome.stages.push(rows.len() as u32);
    outcome.clone()
}

fn delegates_to_governed(rows: &[u32], token: &CancelToken) -> MiningOutcome<Vec<u32>> {
    mine_level_governed(rows, token)
}

fn delegates_with_token(rows: &[u32], token: &CancelToken) -> MiningOutcome<Vec<u32>> {
    mine_level_with_token(rows, token)
}

fn no_outcome_no_obligation(rows: &[u32]) -> Vec<u32> {
    rows.to_vec()
}
