// Golden fixture: the escape hatch — the atomic helper itself is the
// one place allowed to touch the filesystem directly, and it names the
// rule next to each raw call.

fn create_tmp_sibling(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    // lint: allow(raw-snapshot-write) — this *is* the atomic helper.
    std::fs::File::create(path)
}

fn publish_frame(tmp: &std::path::Path, fin: &std::path::Path) -> std::io::Result<()> {
    std::fs::rename(tmp, fin) // lint: allow(raw-snapshot-write) — rename completing the helper
}
