// Golden fixture: direct file mutations `raw-snapshot-write` must
// flag. Linted under the snapshot-zone path by tests/golden.rs.

fn overwrite_in_place(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

fn create_at_final_path(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path)
}

fn append_to_frame(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new().append(true).open(path)
}

fn publish_without_fsync(tmp: &std::path::Path, fin: &std::path::Path) -> std::io::Result<()> {
    std::fs::rename(tmp, fin)
}
