// Golden fixture: snapshot-zone code `raw-snapshot-write` must not
// flag — reads, frame deletion on discard, calls routed through the
// atomic helper, and prose/test mentions of the banned calls.

fn load_frame(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

fn discard_frame(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
}

fn save_frame(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write(path, bytes)
}

// Prose naming fs::write or fs::rename is a comment, not a call.
fn commented() -> &'static str {
    "never call fs::write on the final frame path"
}

#[cfg(test)]
mod tests {
    fn scribble_for_corruption_test(path: &std::path::Path) {
        let _ = std::fs::write(path, b"torn");
    }
}
