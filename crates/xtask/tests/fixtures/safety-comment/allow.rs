// Golden fixture: suppression marker instead of a SAFETY comment
// (e.g. generated code where the justification lives at the generator).

fn read_raw(p: *const u32) -> u32 {
    // lint: allow(safety-comment)
    unsafe { *p }
}
