// Golden fixture: `unsafe` without an adjacent SAFETY comment.

fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}

fn justified_by_unrelated_comment(p: *const u32) -> u32 {
    // this comment does not explain the invariant
    unsafe { *p }
}
