// Golden fixture: properly justified `unsafe` blocks.

fn read_raw(p: *const u32) -> u32 {
    // SAFETY: `p` is non-null and aligned; the caller holds the only
    // reference for the duration of the read.
    unsafe { *p }
}

fn same_line_justification(p: *const u32) -> u32 {
    unsafe { *p } // SAFETY: caller contract guarantees validity
}

fn multi_line_statement(slice: &[u32], idx: usize) -> u32 {
    // SAFETY: idx was bounds-checked by the caller against slice.len().
    let value: u32 = unsafe {
        *slice.get_unchecked(idx)
    };
    value
}
