// Golden fixture: suppression for a micro-stage too small to profile.

// sub-microsecond probe, span overhead would dominate; lint: allow(span-coverage)
fn tiny_probe_governed(token: &CancelToken) -> Result<(), BudgetExceeded> {
    token.check(Stage::MaxSets)
}
