// Golden fixture: governed mining stages that never open an observe
// span nor delegate to a governed helper that does.

fn agree_scan_governed(rows: &[u32], token: &CancelToken) -> Result<Vec<u32>, BudgetExceeded> {
    token.check(Stage::AgreeSets)?;
    Ok(rows.to_vec())
}

fn fanout_only_governed(rows: &[u32], token: &CancelToken) -> Result<Vec<u32>, BudgetExceeded> {
    // Fanning out through the runtime is plumbing, not stage delegation.
    par_map_governed(Parallelism::Auto, token, Stage::MaxSets, rows, |x| Ok(*x))
}
