// Golden fixture: governed stages that satisfy the span obligation —
// opening an observe span directly, or delegating to a governed /
// with-token helper that owns the span.

fn opens_span_governed(rows: &[u32], token: &CancelToken) -> Result<Vec<u32>, BudgetExceeded> {
    let _span = token.observer().span("agree-sets");
    token.check(Stage::AgreeSets)?;
    Ok(rows.to_vec())
}

fn delegates_governed(rows: &[u32], token: &CancelToken) -> Result<Vec<u32>, BudgetExceeded> {
    inner_stage_governed(rows, token)
}

fn threads_token_governed(rows: &[u32], token: &CancelToken) -> Result<Vec<u32>, BudgetExceeded> {
    mine_stage_with_token(rows, token)
}

fn plain_helper(rows: &[u32]) -> Vec<u32> {
    rows.to_vec()
}
