//! Golden-file tests for the flow-level lint rules.
//!
//! Each rule directory under `tests/fixtures/` carries three files:
//! `fire.rs` (every finding in it must be the rule under test),
//! `silent.rs` (the rule must not fire), and `allow.rs` (the content
//! would fire but a `lint: allow(<rule>)` marker suppresses it).
//!
//! Fixtures are linted under synthetic workspace paths so the module
//! map routes them into the right zone; they never join the cargo
//! module tree and need not compile.

use std::fs;
use std::path::PathBuf;

use xtask::lint;

/// Lint `fixtures/<rule>/<file>` as if it lived at `synthetic_path`.
fn lint_fixture(rule: &str, file: &str, synthetic_path: &str) -> Vec<lint::Diagnostic> {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", rule, file]
        .iter()
        .collect();
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    lint::lint_file(synthetic_path, &source)
}

/// Run the fire/silent/allow triple for one rule.
///
/// `fire_lines` pins the 1-based lines the rule must flag in `fire.rs`
/// so a regression that shifts or drops a finding is caught exactly.
fn check_rule(rule: &str, synthetic_path: &str, fire_lines: &[usize]) {
    let fired = lint_fixture(rule, "fire.rs", synthetic_path);
    let got: Vec<usize> = fired
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        got, fire_lines,
        "{rule}/fire.rs: expected findings at {fire_lines:?}, got {fired:?}"
    );
    let stray: Vec<_> = fired.iter().filter(|d| d.rule != rule).collect();
    assert!(
        stray.is_empty(),
        "{rule}/fire.rs trips unrelated rules: {stray:?}"
    );

    for file in ["silent.rs", "allow.rs"] {
        let diags = lint_fixture(rule, file, synthetic_path);
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == rule).collect();
        assert!(hits.is_empty(), "{rule}/{file} must stay silent: {hits:?}");
    }
}

/// Non-lattice rules are exercised under a plain library-source path.
const LIB_PATH: &str = "crates/demo/src/work.rs";
/// Budget coverage only applies inside lattice modules.
const LATTICE_PATH: &str = "crates/tane/src/exact.rs";
/// Nested-alloc only applies inside the flat-layout hot-path modules.
const HOT_PATH: &str = "crates/relation/src/spdb.rs";
/// Raw-snapshot-write only applies inside the snapshot zone.
const SNAPSHOT_PATH: &str = "crates/govern/src/snapshot.rs";
/// Engine-bypass only applies to the CLI, its binaries, and bench bins.
const ENGINE_PATH: &str = "src/cli.rs";

#[test]
fn par_closure_capture_golden() {
    check_rule("par-closure-capture", LIB_PATH, &[7, 15, 21]);
}

#[test]
fn budget_coverage_golden() {
    check_rule("budget-coverage", LATTICE_PATH, &[5, 14, 26]);
}

#[test]
fn nested_alloc_golden() {
    check_rule("nested-alloc", HOT_PATH, &[4, 11, 15]);
}

#[test]
fn raw_snapshot_write_golden() {
    check_rule("raw-snapshot-write", SNAPSHOT_PATH, &[5, 9, 13, 17]);
}

#[test]
fn engine_bypass_golden() {
    check_rule("engine-bypass", ENGINE_PATH, &[5, 9, 13, 17]);
}

#[test]
fn safety_comment_golden() {
    check_rule("safety-comment", LIB_PATH, &[4, 9]);
}

#[test]
fn partial_contract_golden() {
    check_rule("partial-contract", LIB_PATH, &[4, 9]);
}

#[test]
fn span_coverage_golden() {
    check_rule("span-coverage", LIB_PATH, &[4, 9]);
}
