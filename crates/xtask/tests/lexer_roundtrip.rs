//! Property test: the lexer is lossless over every `.rs` file in the
//! workspace — concatenating the token texts reconstructs the source
//! byte-for-byte, and no token is empty or out of order.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::lexer;

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn lexer_roundtrips_every_workspace_file() {
    let root: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", ".."].iter().collect();
    let mut files = Vec::new();
    collect_rust_files(&root, &mut files);
    assert!(
        files.len() > 50,
        "workspace walk found only {} .rs files under {} — wrong root?",
        files.len(),
        root.display()
    );

    for path in &files {
        let src = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let tokens = lexer::lex(&src);

        let mut rebuilt = String::with_capacity(src.len());
        let mut prev_end = 0usize;
        for tok in &tokens {
            assert_eq!(
                tok.start,
                prev_end,
                "{}: gap or overlap before token at byte {}",
                path.display(),
                tok.start
            );
            assert!(
                tok.end > tok.start,
                "{}: empty token at byte {}",
                path.display(),
                tok.start
            );
            rebuilt.push_str(tok.text(&src));
            prev_end = tok.end;
        }
        assert_eq!(
            prev_end,
            src.len(),
            "{}: lexer stopped {} bytes short",
            path.display(),
            src.len() - prev_end
        );
        assert_eq!(&rebuilt, &src, "{}: round-trip mismatch", path.display());
    }
}
