//! Approximate functional dependencies: FDs that *almost* hold.
//!
//! TANE's companion feature ([HKPT98] §5, mentioned in the paper's §5.1):
//! an FD `X → A` holds with error `g₃` — the fraction of tuples to delete
//! for it to hold exactly. Dirty data rarely satisfies FDs exactly; mining
//! at a small ε surfaces the rules the clean data would satisfy.
//!
//! Run with: `cargo run --release --example approximate`

use depminer::prelude::*;
use depminer::relation::Schema;

fn main() {
    // A zip-code table with one typo: tuple 5 assigns zip 69001 to Paris.
    let schema = Schema::new(["city", "zip", "country"]).expect("valid schema");
    let rows = vec![
        vec![Value::from("Lyon"), Value::from(69001), Value::from("FR")],
        vec![Value::from("Lyon"), Value::from(69002), Value::from("FR")],
        vec![Value::from("Paris"), Value::from(75001), Value::from("FR")],
        vec![Value::from("Paris"), Value::from(75002), Value::from("FR")],
        vec![Value::from("Geneva"), Value::from(1201), Value::from("CH")],
        vec![Value::from("Paris"), Value::from(69001), Value::from("FR")], // typo!
        vec![Value::from("Lyon"), Value::from(69003), Value::from("FR")],
        vec![Value::from("Geneva"), Value::from(1202), Value::from("CH")],
    ];
    let r = Relation::from_rows(schema.clone(), rows).expect("rows match schema");
    println!("Relation with one dirty tuple:\n{r}");

    // Exact mining misses zip → city because of the typo.
    let exact = DepMiner::new().mine(&r);
    println!("Exact minimal FDs:");
    for fd in &exact.fds {
        println!("  {}", fd.display_with(&schema));
    }
    let zip_to_city = exact
        .fds
        .iter()
        .any(|f| f.lhs == AttrSet::singleton(1) && f.rhs == 0);
    println!("  (zip -> city found exactly? {zip_to_city})");

    // Approximate mining at ε = 15% recovers it, with its error.
    println!("\nApproximate minimal FDs (g3 <= 0.15):");
    for afd in approximate_fds(&r, 0.15) {
        println!(
            "  {:<24} error {:.3}",
            afd.fd.display_with(&schema),
            afd.error
        );
    }
    println!("\nzip -> city now appears with error 1/8 = 0.125: deleting the");
    println!("single dirty tuple would make it exact.");
}
