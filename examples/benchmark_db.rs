//! A miniature of the paper's §5 evaluation: generate the synthetic
//! benchmark database and race Dep-Miner, Dep-Miner 2 and TANE.
//!
//! (The full sweep with every table/figure lives in the `depminer-bench`
//! crate: `cargo run --release -p depminer-bench --bin experiments`.)
//!
//! Run with: `cargo run --release --example benchmark_db`

use depminer::prelude::*;
use std::time::Instant;

fn main() {
    println!("|R|  |r|    c    dep-miner  dep-miner2  tane     #fds  |armstrong|");
    for &n_attrs in &[6usize, 10] {
        for &n_rows in &[500usize, 2000] {
            for &c in &[0.0f64, 0.3, 0.5] {
                let r = SyntheticConfig {
                    n_attrs,
                    n_rows,
                    correlation: c,
                    seed: 42,
                }
                .generate()
                .expect("valid config");

                let t = Instant::now();
                let dm = DepMiner::algorithm_2(None).mine(&r);
                let t_dm = t.elapsed();

                let t = Instant::now();
                let dm2 = DepMiner::algorithm_3().mine(&r);
                let t_dm2 = t.elapsed();

                let t = Instant::now();
                let tane = Tane::new().run(&r);
                let t_tane = t.elapsed();

                assert_eq!(dm.fds, tane.fds, "miners disagree");
                assert_eq!(dm2.fds, tane.fds, "miners disagree");

                println!(
                    "{n_attrs:<4} {n_rows:<6} {c:<4} {:<10.1?} {:<11.1?} {:<8.1?} {:<5} {}",
                    t_dm,
                    t_dm2,
                    t_tane,
                    dm.fds.len(),
                    dm.armstrong_size(),
                );
            }
        }
    }
    println!("\nShapes to observe (cf. paper Tables 3-5): Armstrong relations stay");
    println!("orders of magnitude smaller than the input; higher correlation c");
    println!("means larger equivalence classes, more agree-set work and bigger");
    println!("Armstrong relations.");
}
