//! Design by example: the inverse workflow of discovery.
//!
//! A designer writes an FD specification; the library answers with a small
//! Armstrong relation that satisfies *exactly* those FDs and their
//! consequences — so every FD the designer forgot is visibly violated in
//! the example, and every implied FD visibly holds ([MR86], the foundation
//! of §4 of the paper). Armstrong-axiom derivations document *why* a
//! consequence holds.
//!
//! Run with: `cargo run --release --example design_by_example`

use depminer::fdtheory::{derive, design, mine_minimal_fds, Fd};
use depminer::prelude::*;
use depminer::relation::Schema;

fn main() {
    // The classic city/street/zip design.
    let schema = Schema::new(["city", "street", "zip"]).expect("valid schema");
    let fds = vec![
        // city street -> zip
        Fd::new(AttrSet::from_indices([0, 1]), 2),
        // zip -> city
        Fd::new(AttrSet::singleton(2), 0),
    ];
    println!("Specified FDs:");
    for fd in &fds {
        println!("  {}", fd.display_with(&schema));
    }

    // The Armstrong example.
    let example = design::armstrong_for_fds_with_schema(&fds, &schema);
    println!("\nArmstrong example ({} tuples):\n{example}", example.len());

    // It satisfies exactly the consequences of the specification: mining it
    // back returns an equivalent cover.
    let mined = mine_minimal_fds(&example);
    println!("Re-mined FDs from the example:");
    for fd in &mined {
        println!("  {}", fd.display_with(&schema));
    }
    assert!(depminer::fdtheory::equivalent(&mined, &fds));

    // Why does `zip street -> city` hold? Derive it under Armstrong's
    // axioms and print the checkable proof.
    let lhs = AttrSet::from_indices([1, 2]);
    let goal_rhs = AttrSet::singleton(0);
    let proof = derive(&fds, lhs, goal_rhs).expect("implied by the specification");
    assert_eq!(proof.check(&fds), Ok(()));
    println!("\nDerivation of {{street, zip}} -> {{city}}:");
    print!("{}", proof.render());

    // And `street -> zip` does not hold — the example witnesses it.
    assert!(derive(&fds, AttrSet::singleton(1), AttrSet::singleton(2)).is_none());
    println!("\n`street -> zip` is NOT implied; rows violating it exist above.");
}
