//! Foreign-key hunting with unary inclusion dependencies.
//!
//! FDs describe structure *within* a relation; inclusion dependencies
//! (INDs) describe references *between* relations — the other half of the
//! [KMRS92] discovery framework the paper builds on. This example profiles
//! a two-table mini-schema and reads the IND Hasse diagram like a dba
//! hunting for undeclared foreign keys.
//!
//! Run with: `cargo run --release --example foreign_keys`

use depminer::ind::{transitive_reduction, unary_inds};
use depminer::prelude::*;
use depminer::relation::Schema;

fn main() {
    let customers = Relation::from_rows(
        Schema::new(["id", "name", "country"]).expect("valid schema"),
        vec![
            vec![Value::Int(1), Value::from("acme"), Value::from("FR")],
            vec![Value::Int(2), Value::from("bolt"), Value::from("DE")],
            vec![Value::Int(3), Value::from("corp"), Value::from("FR")],
        ],
    )
    .expect("valid relation");
    let orders = Relation::from_rows(
        Schema::new(["oid", "customer", "amount"]).expect("valid schema"),
        vec![
            vec![Value::Int(100), Value::Int(1), Value::Int(50)],
            vec![Value::Int(101), Value::Int(3), Value::Int(75)],
            vec![Value::Int(102), Value::Int(1), Value::Int(20)],
            vec![Value::Int(103), Value::Int(2), Value::Int(75)],
        ],
    )
    .expect("valid relation");

    println!("customers:\n{customers}");
    println!("orders:\n{orders}");

    let named = [("customers", &customers), ("orders", &orders)];
    let inds = unary_inds(&[&customers, &orders]);
    println!("Unary inclusion dependencies ({}):", inds.len());
    for ind in &inds {
        println!("  {}", ind.display_with(&named));
    }

    // orders.customer ⊆ customers.id is the undeclared foreign key.
    assert!(inds
        .iter()
        .any(|i| i.display_with(&named) == "orders[customer] ⊆ customers[id]"));

    let (classes, edges) = transitive_reduction(&inds);
    println!(
        "\nHasse diagram ({} classes, {} edges):",
        classes.len(),
        edges.len()
    );
    for (i, j) in &edges {
        let fmt = |k: usize| {
            classes[k]
                .iter()
                .map(|c| {
                    let (n, r) = named[c.relation];
                    format!("{n}[{}]", r.schema().name(c.attribute))
                })
                .collect::<Vec<_>>()
                .join(" = ")
        };
        println!("  {} < {}", fmt(*i), fmt(*j));
    }

    // Combine with FD discovery on each table for a full profile.
    println!("\nPer-table minimal FDs:");
    for (name, r) in named {
        let fds = DepMiner::new().mine(r).fds;
        println!("  {name}:");
        for fd in &fds {
            println!("    {}", fd.display_with(r.schema()));
        }
    }
}
