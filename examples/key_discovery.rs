//! Candidate-key discovery (minimal unique column combinations) from the
//! same agree-set machinery Dep-Miner uses for FDs.
//!
//! Run with: `cargo run --release --example key_discovery`

use depminer::fdtheory::candidate_keys;
use depminer::prelude::*;

fn main() {
    let r = depminer::relation::datasets::enrollment();
    let schema = r.schema().clone();
    println!("Relation ({} tuples):\n{r}", r.len());

    // Keys straight from the mining result: a key is a minimal transversal
    // of the complements of the maximal agree sets.
    let result = DepMiner::new().mine(&r);
    let keys = result.candidate_keys();
    println!("Candidate keys via agree-set transversals:");
    for k in &keys {
        println!("  {}", schema.format_set(*k));
    }

    // Sanity: the same keys fall out of the mined FD cover by pure theory
    // (Lucchesi–Osborn enumeration).
    let theory_keys = candidate_keys(&result.fds, r.arity());
    assert_eq!(keys, theory_keys);
    println!("(cross-checked against Lucchesi–Osborn on the mined cover)");

    // The same keys again from the TANE and FDEP baselines.
    let tane_keys = candidate_keys(&Tane::new().run(&r).fds, r.arity());
    let fdep_keys = candidate_keys(&Fdep::new().run(&r).fds, r.arity());
    assert_eq!(keys, tane_keys);
    assert_eq!(keys, fdep_keys);
    println!("(and against TANE and FDEP)");

    // Prime attributes: useful for 3NF checks.
    let prime = keys.iter().fold(AttrSet::empty(), |acc, &k| acc.union(k));
    println!("Prime attributes: {}", schema.format_set(prime));
}
