//! Logical tuning: the DBA workflow the paper's introduction motivates.
//!
//! 1. mine the minimal FDs of an existing relation;
//! 2. inspect a real-world Armstrong relation — a loss-less, human-sized
//!    sample — to decide which FDs are *semantic* and which are accidental;
//! 3. compute candidate keys and a canonical cover of the FDs kept;
//! 4. normalize: dependency-preserving 3NF synthesis and lossless BCNF.
//!
//! Run with: `cargo run --release --example logical_tuning`

use depminer::fdtheory::{
    bcnf_decompose, candidate_keys, canonical_cover, is_bcnf, synthesize_3nf,
};
use depminer::prelude::*;

fn main() {
    // A course-enrollment relation with both semantic FDs
    // (course → lecturer/room) and an accidental one (lecturer → room).
    let r = depminer::relation::datasets::enrollment();
    let schema = r.schema().clone();
    println!("Relation under analysis ({} tuples):\n{r}", r.len());

    // Step 1: discovery.
    let result = DepMiner::new().mine(&r);
    println!("Minimal FDs found ({}):", result.fds.len());
    for fd in &result.fds {
        println!("  {}", fd.display_with(&schema));
    }

    // Step 2: the Armstrong sample. It satisfies exactly dep(r): any FD
    // visible as violated here is violated in r, any FD holding here holds
    // in r — so the dba can reason on 5 rows instead of millions.
    match result.real_world_armstrong(&r) {
        Ok(sample) => println!(
            "\nArmstrong sample ({} tuples, values from r):\n{sample}",
            sample.len()
        ),
        Err(e) => println!("\nNo real-world Armstrong relation: {e}"),
    }

    // Step 3: suppose the dba keeps every discovered FD. Canonical cover
    // and candidate keys drive normalization.
    let cover = canonical_cover(&result.fds);
    println!("Canonical cover ({} FDs):", cover.len());
    for fd in &cover {
        println!("  {}", fd.display_with(&schema));
    }
    let keys = candidate_keys(&cover, r.arity());
    println!("Candidate keys:");
    for k in &keys {
        println!("  {}", schema.format_set(*k));
    }
    println!(
        "Schema in BCNF already? {}",
        is_bcnf(schema.all_attrs(), &cover)
    );

    // Step 4: normalize.
    println!("\n3NF synthesis (dependency preserving):");
    for frag in synthesize_3nf(r.arity(), &cover) {
        println!(
            "  {}  with {} local FDs",
            schema.format_set(frag.attrs),
            frag.local_fds.len()
        );
    }
    println!("BCNF decomposition (lossless):");
    for frag in bcnf_decompose(r.arity(), &cover) {
        println!(
            "  {}  with {} local FDs",
            schema.format_set(frag.attrs),
            frag.local_fds.len()
        );
    }
}
