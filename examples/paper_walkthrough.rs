//! A guided tour through every worked example of the paper (Examples 1-13),
//! printing each intermediate artifact of the Dep-Miner pipeline.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use depminer::depminer::{agree_sets_naive, cmax_sets, left_hand_sides, TransversalEngine};
use depminer::prelude::*;
use depminer::relation::StrippedPartitionDb;

fn main() {
    // Example 1: the employee relation (tuple ids are 0-based here; the
    // paper numbers them 1-7).
    let r = depminer::relation::datasets::employee();
    let schema = r.schema().clone();
    println!("== Example 1: the relation ==\n{r}");

    // Examples 2-3: stripped partitions and the stripped partition database.
    let db = StrippedPartitionDb::from_relation(&r);
    println!("== Examples 2-3: stripped partition database ==");
    for a in 0..db.arity() {
        let classes: Vec<String> = db
            .partition(a)
            .classes()
            .map(|c| format!("{c:?}"))
            .collect();
        println!("  pi^{:<8} = {{{}}}", schema.name(a), classes.join(", "));
    }

    // Example 4: maximal equivalence classes.
    println!("\n== Example 4: maximal equivalence classes MC ==");
    for c in db.maximal_classes() {
        println!("  {c:?}");
    }

    // Examples 5-8: agree sets (all three algorithms give the same family).
    let ag = agree_sets_naive(&r);
    println!("\n== Examples 5-8: agree sets ag(r) ==");
    for s in &ag.sets {
        println!("  {}", schema.format_set(*s));
    }

    // Example 9: maximal sets and complements.
    let ms = cmax_sets(&ag);
    println!("\n== Example 9: max / cmax per attribute ==");
    for a in 0..r.arity() {
        let fmt = |v: &Vec<AttrSet>| {
            v.iter()
                .map(|s| schema.format_set(*s))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  {:<8} max: [{}]  cmax: [{}]",
            schema.name(a),
            fmt(&ms.max[a]),
            fmt(&ms.cmax[a])
        );
    }

    // Example 10: left-hand sides via minimal transversals.
    let lhs = left_hand_sides(&ms, TransversalEngine::Levelwise);
    println!("\n== Example 10: lhs(dep(r), A) ==");
    for (a, family) in lhs.iter().enumerate() {
        let sides: Vec<String> = family.iter().map(|s| schema.format_set(*s)).collect();
        println!("  {:<8} {}", schema.name(a), sides.join(", "));
    }

    // Example 11: the minimal non-trivial FDs.
    let result = DepMiner::new().mine(&r);
    println!("\n== Example 11: minimal functional dependencies ==");
    println!("{}", result.fds_display());

    // Example 12: the classic integer Armstrong relation.
    println!("\n== Example 12: synthetic Armstrong relation ==");
    println!("{}", result.synthetic_armstrong());

    // Example 13: existence condition and the real-world Armstrong relation.
    println!("== Example 13: real-world Armstrong relation ==");
    let max = result.max_union();
    for a in 0..r.arity() {
        let needed = max.iter().filter(|x| !x.contains(a)).count() + 1;
        println!(
            "  |pi_{}(r)| = {} >= {}",
            schema.name(a),
            r.column(a).distinct_count(),
            needed
        );
    }
    println!(
        "{}",
        result.real_world_armstrong(&r).expect("condition holds")
    );
}
