//! Quickstart: discover FDs and a real-world Armstrong relation.
//!
//! Run with: `cargo run --release --example quickstart`

use depminer::prelude::*;

fn main() {
    // The running example of the paper (Example 1): employees assigned to
    // departments.
    let r = depminer::relation::datasets::employee();
    println!("Input relation ({} tuples):\n{r}", r.len());

    // Dep-Miner discovers every minimal non-trivial FD.
    let result = DepMiner::new().mine(&r);
    println!(
        "Discovered {} minimal functional dependencies:",
        result.fds.len()
    );
    println!("{}\n", result.fds_display());

    // The same pipeline yields MAX(dep(r)) — and with it, a real-world
    // Armstrong relation: a tiny sample of r satisfying *exactly* the same
    // FDs, with values taken from r itself (§4 of the paper).
    let sample = result
        .real_world_armstrong(&r)
        .expect("the employee relation satisfies the existence condition");
    println!(
        "Real-world Armstrong relation ({} of {} tuples):\n{sample}",
        sample.len(),
        r.len()
    );

    // Cross-check with the TANE baseline: identical cover.
    let tane = Tane::new().run(&r);
    assert_eq!(tane.fds, result.fds);
    println!(
        "TANE agrees: {} FDs in {} lattice levels ({} candidates).",
        tane.fds.len(),
        tane.stats.levels,
        tane.stats.candidates
    );
}
