//! The `depminer` binary: see [`depminer::cli`] for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = depminer::cli::run(&args, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(e.code);
    }
}
