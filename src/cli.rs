//! The `depminer` command-line tool.
//!
//! A thin, dependency-free front end over the library for the dba workflow
//! the paper describes: discover FDs, sample with Armstrong relations,
//! inspect keys, mine approximate FDs on dirty data, plan a normalization,
//! and generate benchmark data.
//!
//! ```text
//! depminer fds [--algo depminer|depminer2|tane|fdep|naive] [--save <fds.txt>] <file.csv>
//! depminer armstrong [--synthetic] [--output <out.csv>] <file.csv>
//! depminer keys <file.csv>
//! depminer approx --epsilon <e> <file.csv>
//! depminer normalize <file.csv>
//! depminer generate --attrs <n> --rows <n> [--correlation <c>] [--seed <s>] <out.csv>
//! ```
//!
//! `fds`, `approx` and `armstrong` also accept `--timeout <secs>`,
//! `--max-couples <n>` and `--max-memory <size>` (bytes, or `64m`-style
//! suffixed): mining then runs under a resource [`Budget`] and a
//! budget-exhausted run prints whatever partial result is valid plus
//! per-stage diagnostics, exiting with code **3** (distinct from 1 =
//! runtime error and 2 = usage error).
//!
//! `fds` additionally accepts the observability flags `--profile <out.json>`
//! (write a span-tree profile of the run and print a phase summary) and
//! `--trace` (stream enter/exit/counter events as JSONL to stderr), plus
//! `--algo all` which runs Dep-Miner, TANE and FDEP back to back on one
//! token so a single profile covers every stage of all three miners.
//!
//! All mining commands dispatch through the `depminer-engine` layer: the
//! [`MinerRegistry`] maps `--algo` names and snapshot frame ids onto
//! [`depminer_engine::Miner`] implementations, and the [`Session`] driver
//! owns the budget/observer/checkpoint bundle — the CLI holds no
//! per-algorithm entry-point arms.
//!
//! All logic lives here (unit-testable against in-memory writers); the
//! binary in `src/bin/` only forwards `std::env::args`.

use depminer_core::DepMiner;
use depminer_engine::{ApproxMiner, Emitted, MinerRegistry, Session, SessionCtx};
use depminer_fdtheory::{candidate_keys, canonical_cover, is_bcnf, synthesize_3nf};
use depminer_govern::observe::jsonl::JsonlSink;
use depminer_govern::observe::profile::ProfileSink;
use depminer_govern::observe::{Fanout, Obs, Observer};
use depminer_govern::snapshot::read_snapshot;
use depminer_govern::{
    Budget, BudgetExceeded, MiningOutcome, Snapshot, SnapshotError, SnapshotPolicy,
};
use depminer_relation::{csv, Relation, SyntheticConfig};
use std::fmt;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime, 3 = budget exhausted,
    /// 4 = snapshot unusable).
    pub code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError {
        message: msg.into(),
        code: 2,
    }
}

fn run_err(msg: impl Into<String>) -> CliError {
    CliError {
        message: msg.into(),
        code: 1,
    }
}

fn budget_err(why: &BudgetExceeded) -> CliError {
    CliError {
        message: format!("budget exhausted: {why}"),
        code: 3,
    }
}

/// Maps a snapshot failure onto exit codes: an I/O failure reading the
/// file is a plain runtime error (1); everything the codec *refused* —
/// corrupt, torn, version-skewed, or mismatched frames — is the distinct
/// "snapshot unusable" code **4**, so scripts can tell "my snapshot is
/// bad" from "mining failed".
fn snapshot_err(e: SnapshotError) -> CliError {
    let code = match &e {
        SnapshotError::Io(_) => 1,
        _ => 4,
    };
    CliError {
        message: format!("snapshot unusable: {e}"),
        code,
    }
}

/// Parses a `--max-memory` value: plain bytes, or with a `k`/`m`/`g`
/// binary suffix (case-insensitive), e.g. `64m`.
fn parse_memory_size(s: &str) -> Result<u64, CliError> {
    let bad = || {
        usage_err(format!(
            "--max-memory: invalid size `{s}` (try 64m, 2g, or bytes)"
        ))
    };
    let (digits, shift) = match s.trim().to_ascii_lowercase() {
        t if t.ends_with('k') => (t[..t.len() - 1].to_string(), 10),
        t if t.ends_with('m') => (t[..t.len() - 1].to_string(), 20),
        t if t.ends_with('g') => (t[..t.len() - 1].to_string(), 30),
        t => (t, 0),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    n.checked_mul(1 << shift).filter(|&v| v > 0).ok_or_else(bad)
}

/// Builds a [`Budget`] from `--timeout <secs>` / `--max-couples <n>` /
/// `--max-memory <size>`; `None` when no flag is present (the ungoverned
/// fast path).
fn budget_from_args(args: &Args) -> Result<Option<Budget>, CliError> {
    let timeout: Option<f64> = args.get_parsed("timeout")?;
    let max_couples: Option<u64> = args.get_parsed("max-couples")?;
    let max_memory = args.get("max-memory").map(parse_memory_size).transpose()?;
    if timeout.is_none() && max_couples.is_none() && max_memory.is_none() {
        return Ok(None);
    }
    let mut budget = Budget::unlimited();
    if let Some(secs) = timeout {
        // `--timeout 0` is a legal (if extreme) budget: the deadline is
        // already past, so the run trips at its first checkpoint and
        // exits 3 with an empty-but-well-formed partial — it is not a
        // usage error. Only negative or non-finite values are rejected.
        if !secs.is_finite() || secs < 0.0 {
            return Err(usage_err(
                "--timeout must be a non-negative number of seconds",
            ));
        }
        budget = budget.with_timeout(Duration::from_secs_f64(secs));
    }
    if let Some(n) = max_couples {
        budget = budget.with_max_couples(n);
    }
    if let Some(bytes) = max_memory {
        budget = budget.with_max_memory_bytes(bytes);
    }
    Ok(Some(budget))
}

/// Builds a [`SnapshotPolicy`] from `--checkpoint-dir <dir>` (plus the
/// optional cadence flags `--checkpoint-every <n boundaries>` and
/// `--checkpoint-interval <secs>`); `None` when absent. The directory is
/// created if missing. A trip always flushes the latest boundary
/// snapshot regardless of cadence.
fn snapshot_policy_from_args(args: &Args) -> Result<Option<SnapshotPolicy>, CliError> {
    let Some(dir) = args.get("checkpoint-dir") else {
        if args.has("checkpoint-every") || args.has("checkpoint-interval") {
            return Err(usage_err(
                "--checkpoint-every/--checkpoint-interval need --checkpoint-dir",
            ));
        }
        return Ok(None);
    };
    std::fs::create_dir_all(dir)
        .map_err(|e| run_err(format!("cannot create checkpoint dir {dir}: {e}")))?;
    let mut policy = SnapshotPolicy::new(dir);
    if let Some(n) = args.get_parsed::<u64>("checkpoint-every")? {
        if n == 0 {
            return Err(usage_err("--checkpoint-every must be at least 1"));
        }
        policy = policy.every_boundaries(n);
    }
    if let Some(secs) = args.get_parsed::<f64>("checkpoint-interval")? {
        if !secs.is_finite() || secs < 0.0 {
            return Err(usage_err(
                "--checkpoint-interval must be a non-negative number of seconds",
            ));
        }
        policy = policy.every_interval(Duration::from_secs_f64(secs));
    }
    Ok(Some(policy))
}

/// Observability sinks requested via `--profile <out.json>` / `--trace`.
///
/// The profile sink is kept alongside its output path so the finished
/// span tree can be exported after mining returns; the trace sink streams
/// to stderr as events happen and needs no finalization.
struct ObserveSetup {
    obs: Obs,
    profile: Option<(Arc<ProfileSink>, String)>,
}

fn observe_from_args(args: &Args) -> ObserveSetup {
    let mut sinks: Vec<Arc<dyn Observer>> = Vec::new();
    let mut profile = None;
    if let Some(path) = args.get("profile") {
        let sink = Arc::new(ProfileSink::new());
        sinks.push(sink.clone());
        profile = Some((sink, path.to_string()));
    }
    if args.has("trace") {
        sinks.push(Arc::new(JsonlSink::new(std::io::stderr())));
    }
    let obs = if sinks.len() == 1 {
        Obs::new(sinks.remove(0))
    } else if sinks.is_empty() {
        Obs::none()
    } else {
        Obs::new(Arc::new(Fanout::new(sinks)))
    };
    ObserveSetup { obs, profile }
}

/// Writes the collected profile (if `--profile` was given) and prints the
/// rendered phase summary as `#`-prefixed comment lines.
fn finish_observe(setup: &ObserveSetup, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    if let Some((sink, path)) = &setup.profile {
        let profile = sink.snapshot();
        std::fs::write(path, profile.to_json())
            .map_err(|e| run_err(format!("cannot write {path}: {e}")))?;
        writeln!(out, "# profile written to {path}").map_err(io)?;
        for line in profile.render_text().lines() {
            writeln!(out, "# {line}").map_err(io)?;
        }
    }
    Ok(())
}

/// Prints per-stage diagnostics for an interrupted run and converts the
/// trip into the exit-code-3 error.
fn report_interrupted<T>(
    outcome: &MiningOutcome<T>,
    why: &BudgetExceeded,
    out: &mut dyn Write,
) -> CliError {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    for line in outcome.diagnostics().lines() {
        if let Err(e) = writeln!(out, "# {line}") {
            return io(e);
        }
    }
    budget_err(why)
}

/// The ` [PARTIAL]` header suffix for interrupted runs.
fn partial_suffix<T>(outcome: &MiningOutcome<T>) -> &'static str {
    if outcome.is_complete() {
        ""
    } else {
        " [PARTIAL]"
    }
}

/// The shared tail of every mining command, emitted once for the whole
/// `Session` driver layer instead of per command: prints the header and
/// the emitted dependency lines, surfaces per-stage diagnostics plus the
/// exit-code-3 error when the run was interrupted, saves a *complete*
/// exact cover when `save` is given, and finishes the observability
/// sinks (even an interrupted run exports its partial profile — the span
/// tree up to the trip is exactly what a user diagnosing a budget
/// blowout wants to see).
fn emit_outcome(
    outcome: &MiningOutcome<Emitted>,
    header: &str,
    r: &Relation,
    save: Option<&str>,
    observe: &ObserveSetup,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    writeln!(out, "{header}").map_err(io)?;
    match &outcome.result {
        Emitted::Fds(fds) => {
            for fd in fds {
                writeln!(out, "{}", fd.display_with(r.schema())).map_err(io)?;
            }
        }
        Emitted::ApproxFds { fds, .. } => {
            for afd in fds {
                writeln!(
                    out,
                    "{:<40} g3 = {:.4}",
                    afd.fd.display_with(r.schema()),
                    afd.error
                )
                .map_err(io)?;
            }
        }
    }
    if let Some(why) = outcome.interrupted.clone() {
        let err = report_interrupted(outcome, &why, out);
        finish_observe(observe, out)?;
        return Err(err);
    }
    if let (Some(path), Some(fds)) = (save, outcome.result.exact_fds()) {
        let text = depminer_fdtheory::fdfile::render(r.schema(), fds);
        std::fs::write(path, text).map_err(|e| run_err(format!("cannot write {path}: {e}")))?;
        writeln!(out, "# saved FD file to {path}").map_err(io)?;
    }
    finish_observe(observe, out)?;
    Ok(())
}

const USAGE: &str = "\
depminer — functional-dependency discovery and Armstrong relations (EDBT 2000)

USAGE:
    depminer fds [--algo depminer|depminer2|tane|fdep|naive|all] [--save <fds.txt>] <file.csv>
    depminer resume --checkpoint-dir <dir> [--algo <name>] <file.csv>
    depminer armstrong [--synthetic] [--output <out.csv>] <file.csv>
    depminer keys <file.csv>
    depminer approx --epsilon <e> <file.csv>
    depminer normalize <file.csv>
    depminer inds <file.csv> [<file2.csv> ...]
    depminer describe <file.csv>
    depminer report <file.csv>
    depminer design [--output <out.csv>] <fds.txt>
    depminer prove --goal \"<X -> Y>\" <fds.txt>
    depminer generate --attrs <n> --rows <n> [--correlation <c>] [--seed <s>] <out.csv>
    depminer help

BUDGETS:
    fds, approx and armstrong accept --timeout <secs>, --max-couples <n>
    and --max-memory <size> (bytes, or with a k/m/g suffix, e.g. 64m; caps
    the tracked partition storage — the TANE cache evicts dead partitions
    before giving up). When the budget runs out the valid partial result
    and per-stage diagnostics are printed and the process exits with code 3.
    --timeout 0 trips at the first checkpoint: useful for smoke-testing
    budget handling, or with --checkpoint-dir for forcing a snapshot.

CHECKPOINTS:
    fds, approx and resume accept --checkpoint-dir <dir>: when a budget
    trips, resumable stage state is written atomically to <dir>/<algo>.snap
    (CRC-checksummed, versioned). Add --checkpoint-every <n> (snapshot every
    n clean stage boundaries) or --checkpoint-interval <secs> for periodic
    snapshots during healthy runs. `resume` re-loads the snapshot, verifies
    it against the relation and the algorithm configuration recorded in the
    frame, and continues mining from the saved frontier; a corrupt, torn,
    truncated, version-skewed or mismatched snapshot is refused with a
    positioned diagnostic and exit code 4. Completed runs delete their
    snapshot. With several .snap files in the directory, pick one with
    --algo depminer|tane|approx|fdep.

OBSERVABILITY:
    fds accepts --profile <out.json> (write a span-tree profile with phase
    timings and counters, plus a rendered summary) and --trace (stream
    enter/exit/counter events as JSONL to stderr). --algo all mines with
    Dep-Miner, TANE and FDEP on one token so the profile covers all three.

FD FILE FORMAT (design / prove):
    attributes: city street zip
    city street -> zip
    zip -> city
";

/// Parsed option list: `--key value` flags, `--flag` booleans, positionals.
struct Args {
    flags: Vec<(String, Option<String>)>,
    positionals: Vec<String>,
}

/// Flags that take no value, per subcommand namespace.
const BOOLEAN_FLAGS: &[&str] = &["synthetic", "trace"];

impl Args {
    fn parse(args: &[String]) -> Result<Args, CliError> {
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push((name.to_string(), None));
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| usage_err(format!("--{name} needs a value")))?;
                    flags.push((name.to_string(), Some(v.clone())));
                }
            } else {
                positionals.push(a.clone());
            }
        }
        Ok(Args { flags, positionals })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| usage_err(format!("invalid value for --{name}: {v}"))),
        }
    }

    fn single_file(&self) -> Result<&str, CliError> {
        match self.positionals.as_slice() {
            [f] => Ok(f),
            [] => Err(usage_err("missing input file")),
            _ => Err(usage_err("expected exactly one input file")),
        }
    }
}

fn load(path: &str) -> Result<Relation, CliError> {
    csv::read_csv_file(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))
}

/// Runs the CLI. `args` excludes the program name. Output goes to `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let (cmd, rest) = match args.split_first() {
        None => {
            write!(out, "{USAGE}").map_err(io)?;
            return Err(usage_err("missing command"));
        }
        Some((c, rest)) => (c.as_str(), rest),
    };
    let parsed = Args::parse(rest)?;
    match cmd {
        "help" | "--help" | "-h" => {
            write!(out, "{USAGE}").map_err(io)?;
            Ok(())
        }
        "fds" => cmd_fds(&parsed, out),
        "resume" => cmd_resume(&parsed, out),
        "armstrong" => cmd_armstrong(&parsed, out),
        "keys" => cmd_keys(&parsed, out),
        "approx" => cmd_approx(&parsed, out),
        "normalize" => cmd_normalize(&parsed, out),
        "inds" => cmd_inds(&parsed, out),
        "describe" => cmd_describe(&parsed, out),
        "report" => cmd_report(&parsed, out),
        "design" => cmd_design(&parsed, out),
        "prove" => cmd_prove(&parsed, out),
        "generate" => cmd_generate(&parsed, out),
        other => Err(usage_err(format!("unknown command: {other}\n{USAGE}"))),
    }
}

fn cmd_fds(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let file = args.single_file()?;
    let r = load(file)?;
    let algo = args.get("algo").unwrap_or("depminer");
    let observe = observe_from_args(args);
    let budget = budget_from_args(args)?;
    let policy = snapshot_policy_from_args(args)?;
    let registry = MinerRegistry::standard();
    // A budget, an observer, a checkpoint dir or the all-miners mode each
    // need a live token, so any of them routes through the governed path.
    let governed = budget.is_some() || observe.obs.enabled() || policy.is_some() || algo == "all";
    let session = Session::new(SessionCtx::new(
        &r,
        budget.unwrap_or_else(Budget::unlimited),
        observe.obs.clone(),
        policy,
    ));
    let outcome = if algo == "all" {
        session
            .run_all(&registry)
            .map_err(|e| run_err(e.to_string()))?
    } else {
        match registry.by_cli_name(algo).filter(|e| e.fds_algo) {
            Some(entry) if !governed || entry.governed => {
                session.run(entry.instantiate().as_ref())
            }
            _ if governed => {
                return Err(usage_err(format!(
                "--timeout/--max-couples/--max-memory/--profile/--trace/--checkpoint-dir are not supported with --algo {algo}"
            )))
            }
            _ => return Err(usage_err(format!("unknown --algo: {algo}"))),
        }
    };
    let header = format!(
        "# {} minimal non-trivial FDs in {file} ({} tuples, {} attributes), algo = {algo}{}",
        outcome.result.len(),
        r.len(),
        r.arity(),
        partial_suffix(&outcome)
    );
    emit_outcome(&outcome, &header, &r, args.get("save"), &observe, out)
}

/// The snapshot algorithm ids actually stored in a checkpoint
/// directory's frames (unreadable frames are named by file), so resume
/// errors can say what is really there.
fn frame_algos(dir: &str) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut algos: Vec<String> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "snap"))
        .map(|p| match read_snapshot(&p) {
            Ok(snap) => snap.algo,
            Err(_) => format!(
                "{} (unreadable)",
                p.file_name().unwrap_or_default().to_string_lossy()
            ),
        })
        .collect();
    algos.sort();
    algos
}

/// Finds the snapshot file to resume from: `<dir>/<algo-id>.snap` when
/// the frame algorithm is unambiguous, otherwise requires `--algo`. The
/// `--algo` spellings and their frame ids come from the registry, and
/// failures report the algorithm ids actually stored in the directory.
fn locate_snapshot(
    args: &Args,
    dir: &str,
    registry: &MinerRegistry,
) -> Result<std::path::PathBuf, CliError> {
    if let Some(algo) = args.get("algo") {
        let Some(entry) = registry.by_cli_name(algo).filter(|e| e.resumable) else {
            let names: Vec<&str> = registry
                .entries()
                .iter()
                .filter(|e| e.resumable)
                .map(|e| e.cli_name)
                .collect();
            let stored = frame_algos(dir);
            let hint = if stored.is_empty() {
                String::new()
            } else {
                format!("; {dir} holds: {}", stored.join(", "))
            };
            return Err(usage_err(format!(
                "unknown --algo for resume: {algo} (expected {}{hint})",
                names.join("|")
            )));
        };
        let path = std::path::Path::new(dir).join(format!("{}.snap", entry.algo_id));
        if !path.exists() {
            let stored = frame_algos(dir);
            let hint = if stored.is_empty() {
                "the directory holds no frames".to_string()
            } else {
                format!("the directory holds frames for: {}", stored.join(", "))
            };
            return Err(run_err(format!(
                "no {}.snap in {dir}; {hint}",
                entry.algo_id
            )));
        }
        return Ok(path);
    }
    let mut snaps: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| run_err(format!("cannot read checkpoint dir {dir}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "snap"))
        .collect();
    snaps.sort();
    match snaps.len() {
        0 => Err(run_err(format!(
            "no .snap file in {dir}; nothing to resume"
        ))),
        1 => Ok(snaps.remove(0)),
        _ => Err(usage_err(format!(
            "{dir} holds {} snapshots ({}); pick one with --algo",
            snaps.len(),
            frame_algos(dir).join(", ")
        ))),
    }
}

fn cmd_resume(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = args
        .get("checkpoint-dir")
        .ok_or_else(|| usage_err("resume requires --checkpoint-dir <dir>"))?
        .to_string();
    let r = load(args.single_file()?)?;
    let observe = observe_from_args(args);
    let budget = budget_from_args(args)?.unwrap_or_else(Budget::unlimited);
    // Re-arm the same directory so the resumed run keeps checkpointing
    // (and can itself be resumed if it trips again).
    let policy = snapshot_policy_from_args(args)?;
    let registry = MinerRegistry::standard();

    let path = locate_snapshot(args, &dir, &registry)?;
    let snap: Snapshot = read_snapshot(&path).map_err(snapshot_err)?;
    let algo = snap.algo.clone();
    // The registry reconstructs the exact miner configuration the frame
    // was written by (or refuses, naming the ids this build knows).
    let miner = registry.from_frame(&snap).map_err(snapshot_err)?;
    let session = Session::new(SessionCtx::new(&r, budget, observe.obs.clone(), policy));
    let outcome = session
        .resume(miner.as_ref(), &snap)
        .map_err(snapshot_err)?;
    let header = match &outcome.result {
        Emitted::ApproxFds { epsilon, .. } => format!(
            "# resumed {algo} from {}: {} minimal approximate FDs with g3 <= {epsilon}{}",
            path.display(),
            outcome.result.len(),
            partial_suffix(&outcome)
        ),
        Emitted::Fds(_) => format!(
            "# resumed {algo} from {}: {} minimal non-trivial FDs in {} ({} tuples, {} attributes){}",
            path.display(),
            outcome.result.len(),
            args.single_file()?,
            r.len(),
            r.arity(),
            partial_suffix(&outcome)
        ),
    };
    emit_outcome(&outcome, &header, &r, args.get("save"), &observe, out)
}

fn cmd_armstrong(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let r = load(args.single_file()?)?;
    // One token spans mining AND generation so --timeout bounds the whole
    // command; a trip in either half exits with code 3.
    let token = match budget_from_args(args)? {
        Some(budget) => budget.start(),
        None => depminer_govern::CancelToken::unlimited(),
    };
    // armstrong needs the full MiningResult (max sets feed the
    // generator), which the engine's Emitted deliberately elides.
    // lint: allow(engine-bypass)
    let outcome = DepMiner::new().mine_with_token(&r, &token);
    if let Some(why) = outcome.interrupted.clone() {
        writeln!(
            out,
            "# budget exhausted while mining; no Armstrong relation"
        )
        .map_err(io)?;
        return Err(report_interrupted(&outcome, &why, out));
    }
    let result = outcome.result;
    let arm = if args.has("synthetic") {
        match result.synthetic_armstrong_governed(&token) {
            Ok(arm) => arm,
            Err(why) => return Err(budget_err(&why)),
        }
    } else {
        match result.real_world_armstrong_governed(&r, &token) {
            Ok(built) => built.map_err(|e| run_err(format!("{e}; retry with --synthetic")))?,
            Err(why) => return Err(budget_err(&why)),
        }
    };
    writeln!(
        out,
        "# Armstrong relation: {} tuples (input had {}), satisfies exactly the {} discovered FDs",
        arm.len(),
        r.len(),
        result.fds.len()
    )
    .map_err(io)?;
    match args.get("output") {
        Some(path) => {
            csv::write_csv_file(&arm, path)
                .map_err(|e| run_err(format!("cannot write {path}: {e}")))?;
            writeln!(out, "# written to {path}").map_err(io)?;
        }
        None => {
            write!(out, "{arm}").map_err(io)?;
        }
    }
    Ok(())
}

fn cmd_keys(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let r = load(args.single_file()?)?;
    let result = DepMiner::new().mine(&r);
    let keys = result.candidate_keys();
    writeln!(out, "# {} candidate key(s)", keys.len()).map_err(io)?;
    for k in keys {
        writeln!(out, "{}", r.schema().format_set(k)).map_err(io)?;
    }
    Ok(())
}

fn cmd_approx(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let epsilon: f64 = args
        .get_parsed("epsilon")?
        .ok_or_else(|| usage_err("approx requires --epsilon <e>"))?;
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(usage_err("--epsilon must be in [0, 1]"));
    }
    let r = load(args.single_file()?)?;
    let budget = budget_from_args(args)?;
    let policy = snapshot_policy_from_args(args)?;
    // approx has no observability flags; the setup is inert and only
    // satisfies the shared reporting tail.
    let observe = ObserveSetup {
        obs: Obs::none(),
        profile: None,
    };
    let session = Session::new(SessionCtx::new(
        &r,
        budget.unwrap_or_else(Budget::unlimited),
        Obs::none(),
        policy,
    ));
    let outcome = session.run(&ApproxMiner { epsilon });
    let header = format!(
        "# {} minimal approximate FDs with g3 <= {epsilon}{}",
        outcome.result.len(),
        partial_suffix(&outcome)
    );
    emit_outcome(&outcome, &header, &r, None, &observe, out)
}

fn cmd_normalize(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let r = load(args.single_file()?)?;
    let schema = r.schema().clone();
    let result = DepMiner::new().mine(&r);
    let cover = canonical_cover(&result.fds);
    writeln!(out, "# canonical cover ({} FDs):", cover.len()).map_err(io)?;
    for fd in &cover {
        writeln!(out, "  {}", fd.display_with(&schema)).map_err(io)?;
    }
    let keys = candidate_keys(&cover, r.arity());
    writeln!(out, "# candidate keys:").map_err(io)?;
    for k in &keys {
        writeln!(out, "  {}", schema.format_set(*k)).map_err(io)?;
    }
    if is_bcnf(schema.all_attrs(), &cover) {
        writeln!(out, "# schema is in BCNF; no decomposition needed").map_err(io)?;
    } else {
        writeln!(out, "# schema is NOT in BCNF; 3NF synthesis:").map_err(io)?;
        for frag in synthesize_3nf(r.arity(), &cover) {
            writeln!(
                out,
                "  {} ({} local FDs)",
                schema.format_set(frag.attrs),
                frag.local_fds.len()
            )
            .map_err(io)?;
        }
    }
    Ok(())
}

fn cmd_inds(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    if args.positionals.is_empty() {
        return Err(usage_err("inds requires at least one input file"));
    }
    let relations: Vec<(String, depminer_relation::Relation)> = args
        .positionals
        .iter()
        .map(|p| load(p).map(|r| (p.clone(), r)))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&depminer_relation::Relation> = relations.iter().map(|(_, r)| r).collect();
    let inds = depminer_ind::unary_inds(&refs);
    let named: Vec<(&str, &depminer_relation::Relation)> =
        relations.iter().map(|(n, r)| (n.as_str(), r)).collect();
    writeln!(out, "# {} unary inclusion dependencies", inds.len()).map_err(io)?;
    for ind in &inds {
        writeln!(out, "{}", ind.display_with(&named)).map_err(io)?;
    }
    let (classes, edges) = depminer_ind::transitive_reduction(&inds);
    if !edges.is_empty() {
        writeln!(out, "# Hasse diagram ({} classes):", classes.len()).map_err(io)?;
        let fmt_class = |i: usize| {
            classes[i]
                .iter()
                .map(|c| {
                    let (n, r) = named[c.relation];
                    format!("{n}[{}]", r.schema().name(c.attribute))
                })
                .collect::<Vec<_>>()
                .join(" = ")
        };
        for (i, j) in edges {
            writeln!(out, "  {} < {}", fmt_class(i), fmt_class(j)).map_err(io)?;
        }
    }
    Ok(())
}

fn cmd_describe(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let r = load(args.single_file()?)?;
    let stats = depminer_relation::column_stats(&r);
    write!(out, "{}", depminer_relation::render_stats(&stats, r.len())).map_err(io)
}

fn cmd_report(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let path = args.single_file()?;
    let r = load(path)?;
    let schema = r.schema().clone();
    writeln!(out, "# Profiling report for {path}\n").map_err(io)?;

    writeln!(out, "## Column statistics").map_err(io)?;
    let stats = depminer_relation::column_stats(&r);
    write!(out, "{}", depminer_relation::render_stats(&stats, r.len())).map_err(io)?;

    let result = DepMiner::new().mine(&r);
    writeln!(
        out,
        "\n## Minimal functional dependencies ({})",
        result.fds.len()
    )
    .map_err(io)?;
    for fd in &result.fds {
        writeln!(out, "  {}", fd.display_with(&schema)).map_err(io)?;
    }

    let keys = result.candidate_keys();
    writeln!(out, "\n## Candidate keys ({})", keys.len()).map_err(io)?;
    for k in &keys {
        writeln!(out, "  {}", schema.format_set(*k)).map_err(io)?;
    }

    writeln!(out, "\n## Armstrong sample").map_err(io)?;
    match result.real_world_armstrong(&r) {
        Ok(arm) => {
            writeln!(out, "  {} tuples (input: {}):", arm.len(), r.len()).map_err(io)?;
            for line in arm.to_string().lines() {
                writeln!(out, "  {line}").map_err(io)?;
            }
        }
        Err(e) => writeln!(out, "  unavailable: {e}").map_err(io)?,
    }

    writeln!(out, "\n## Normalization").map_err(io)?;
    let cover = canonical_cover(&result.fds);
    if is_bcnf(schema.all_attrs(), &cover) {
        writeln!(out, "  schema is in BCNF").map_err(io)?;
    } else {
        writeln!(out, "  schema is NOT in BCNF; 3NF synthesis:").map_err(io)?;
        for frag in synthesize_3nf(r.arity(), &cover) {
            writeln!(out, "    {}", schema.format_set(frag.attrs)).map_err(io)?;
        }
    }
    Ok(())
}

/// Parses the FD file format: an `attributes:` header then `X -> A` lines.
fn parse_fd_file(
    path: &str,
) -> Result<(depminer_relation::Schema, Vec<depminer_fdtheory::Fd>), CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))?;
    parse_fd_text(&text).map_err(|m| run_err(format!("{path}: {m}")))
}

fn parse_fd_text(
    text: &str,
) -> Result<(depminer_relation::Schema, Vec<depminer_fdtheory::Fd>), String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty FD file")?;
    let names = header
        .strip_prefix("attributes:")
        .ok_or("first line must be `attributes: <name> <name> …`")?;
    let schema =
        depminer_relation::Schema::new(names.split_whitespace()).map_err(|e| e.to_string())?;
    let mut fds = Vec::new();
    for line in lines {
        let (lhs_txt, rhs_txt) = line
            .split_once("->")
            .ok_or_else(|| format!("missing `->` in {line:?}"))?;
        let lhs = schema
            .attr_set(lhs_txt.split_whitespace())
            .map_err(|e| e.to_string())?;
        for rhs_name in rhs_txt.split_whitespace() {
            let rhs = schema
                .index_of(rhs_name)
                .ok_or_else(|| format!("unknown attribute {rhs_name:?}"))?;
            fds.push(depminer_fdtheory::Fd::new(lhs, rhs));
        }
    }
    Ok((schema, fds))
}

fn cmd_design(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let (schema, fds) = parse_fd_file(args.single_file()?)?;
    let arm = depminer_fdtheory::design::armstrong_for_fds_with_schema(&fds, &schema);
    writeln!(
        out,
        "# Armstrong relation for {} FD(s): {} tuples satisfying exactly their consequences",
        fds.len(),
        arm.len()
    )
    .map_err(io)?;
    match args.get("output") {
        Some(path) => {
            csv::write_csv_file(&arm, path)
                .map_err(|e| run_err(format!("cannot write {path}: {e}")))?;
            writeln!(out, "# written to {path}").map_err(io)?;
        }
        None => write!(out, "{arm}").map_err(io)?,
    }
    Ok(())
}

fn cmd_prove(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let goal_txt = args
        .get("goal")
        .ok_or_else(|| usage_err("prove requires --goal \"X -> Y\""))?;
    let (schema, fds) = parse_fd_file(args.single_file()?)?;
    let (lhs_txt, rhs_txt) = goal_txt
        .split_once("->")
        .ok_or_else(|| usage_err("goal must have the form \"X -> Y\""))?;
    let lhs = schema
        .attr_set(lhs_txt.split_whitespace())
        .map_err(|e| usage_err(e.to_string()))?;
    let rhs = schema
        .attr_set(rhs_txt.split_whitespace())
        .map_err(|e| usage_err(e.to_string()))?;
    match depminer_fdtheory::derive(&fds, lhs, rhs) {
        Some(proof) => {
            debug_assert_eq!(proof.check(&fds), Ok(()));
            writeln!(
                out,
                "# F |= {goal_txt}; derivation under Armstrong's axioms:"
            )
            .map_err(io)?;
            write!(out, "{}", proof.render()).map_err(io)?;
        }
        None => {
            writeln!(out, "# F does NOT imply {goal_txt}").map_err(io)?;
            // Show the counterexample relation: an Armstrong relation for F
            // violates every non-implied FD.
            writeln!(out, "# counterexample (Armstrong relation for F):").map_err(io)?;
            let arm = depminer_fdtheory::design::armstrong_for_fds_with_schema(&fds, &schema);
            write!(out, "{arm}").map_err(io)?;
        }
    }
    Ok(())
}

fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| run_err(format!("write failed: {e}"));
    let n_attrs: usize = args
        .get_parsed("attrs")?
        .ok_or_else(|| usage_err("generate requires --attrs <n>"))?;
    let n_rows: usize = args
        .get_parsed("rows")?
        .ok_or_else(|| usage_err("generate requires --rows <n>"))?;
    let correlation: f64 = args.get_parsed("correlation")?.unwrap_or(0.0);
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(0xEDB7_2000);
    let path = args.single_file()?;
    let r = SyntheticConfig {
        n_attrs,
        n_rows,
        correlation,
        seed,
    }
    .generate()
    .map_err(|e| usage_err(format!("generation failed: {e}")))?;
    csv::write_csv_file(&r, path).map_err(|e| run_err(format!("cannot write {path}: {e}")))?;
    writeln!(
        out,
        "# wrote {n_rows} tuples x {n_attrs} attributes (c = {correlation}, seed = {seed}) to {path}"
    )
    .map_err(io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn tmp_csv(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("depminer_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const ZIP_CSV: &str = "city,zip\nLyon,69001\nLyon,69002\nParis,75001\n";

    #[test]
    fn help_prints_usage() {
        let out = run_cli(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("armstrong"));
    }

    #[test]
    fn missing_command_is_usage_error() {
        let err = run_cli(&[]).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run_cli(&["frobnicate"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn fds_on_csv() {
        let path = tmp_csv("fds.csv", ZIP_CSV);
        let out = run_cli(&["fds", &path]).unwrap();
        assert!(out.contains("zip -> city"));
        assert!(!out.contains("city -> zip"));
        // every algorithm agrees
        for algo in ["depminer", "depminer2", "tane", "fdep", "naive"] {
            let o = run_cli(&["fds", "--algo", algo, &path]).unwrap();
            assert!(o.contains("zip -> city"), "algo {algo}");
        }
        let err = run_cli(&["fds", "--algo", "nope", &path]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn fds_missing_file_is_runtime_error() {
        let err = run_cli(&["fds", "/nonexistent/x.csv"]).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn armstrong_to_stdout_and_file() {
        let path = tmp_csv("arm.csv", ZIP_CSV);
        let out = run_cli(&["armstrong", &path]).unwrap();
        assert!(out.contains("Armstrong relation"));
        assert!(out.contains("Lyon"));
        let outfile = tmp_csv("arm_out.csv", "");
        let out = run_cli(&["armstrong", "--output", &outfile, &path]).unwrap();
        assert!(out.contains("written to"));
        let written = std::fs::read_to_string(&outfile).unwrap();
        assert!(written.starts_with("city,zip"));
        // synthetic variant always exists
        let out = run_cli(&["armstrong", "--synthetic", &path]).unwrap();
        assert!(out.contains("Armstrong relation"));
    }

    #[test]
    fn keys_lists_candidate_keys() {
        let path = tmp_csv("keys.csv", ZIP_CSV);
        let out = run_cli(&["keys", &path]).unwrap();
        assert!(out.contains("{zip}"));
        assert!(
            !out.contains("{city, zip}"),
            "non-minimal key listed:\n{out}"
        );
    }

    #[test]
    fn approx_requires_epsilon() {
        let path = tmp_csv("approx.csv", ZIP_CSV);
        assert_eq!(run_cli(&["approx", &path]).unwrap_err().code, 2);
        assert_eq!(
            run_cli(&["approx", "--epsilon", "7", &path])
                .unwrap_err()
                .code,
            2
        );
        let out = run_cli(&["approx", "--epsilon", "0.5", &path]).unwrap();
        assert!(out.contains("g3 ="));
    }

    #[test]
    fn normalize_reports_cover_and_keys() {
        let path = tmp_csv(
            "norm.csv",
            "city,street,zip\nLyon,a,69001\nLyon,b,69002\nParis,a,75001\nParis,c,75002\n",
        );
        let out = run_cli(&["normalize", &path]).unwrap();
        assert!(out.contains("canonical cover"));
        assert!(out.contains("candidate keys"));
    }

    #[test]
    fn generate_roundtrip() {
        let outfile = tmp_csv("gen.csv", "");
        let out = run_cli(&[
            "generate",
            "--attrs",
            "4",
            "--rows",
            "50",
            "--correlation",
            "0.3",
            "--seed",
            "7",
            &outfile,
        ])
        .unwrap();
        assert!(out.contains("wrote 50 tuples"));
        let r = csv::read_csv_file(&outfile).unwrap();
        assert_eq!(r.len(), 50);
        assert_eq!(r.arity(), 4);
        // deterministic: regenerating with the same seed matches
        run_cli(&[
            "generate",
            "--attrs",
            "4",
            "--rows",
            "50",
            "--correlation",
            "0.3",
            "--seed",
            "7",
            &outfile,
        ])
        .unwrap();
        assert_eq!(csv::read_csv_file(&outfile).unwrap(), r);
        // missing required flags
        assert_eq!(run_cli(&["generate", &outfile]).unwrap_err().code, 2);
    }

    #[test]
    fn describe_prints_stats() {
        let path = tmp_csv("desc.csv", ZIP_CSV);
        let out = run_cli(&["describe", &path]).unwrap();
        assert!(out.contains("3 tuples"));
        assert!(out.contains("distinct"));
        assert!(out.contains("city"));
    }

    #[test]
    fn report_contains_all_sections() {
        let path = tmp_csv("report.csv", ZIP_CSV);
        let out = run_cli(&["report", &path]).unwrap();
        for section in [
            "Column statistics",
            "Minimal functional dependencies",
            "Candidate keys",
            "Armstrong sample",
            "Normalization",
        ] {
            assert!(out.contains(section), "missing section {section}:\n{out}");
        }
    }

    const FD_FILE: &str = "\
# a classic
attributes: city street zip
city street -> zip
zip -> city
";

    #[test]
    fn design_builds_armstrong_example() {
        let path = tmp_csv("design.txt", FD_FILE);
        let out = run_cli(&["design", &path]).unwrap();
        assert!(out.contains("Armstrong relation"));
        assert!(out.contains("city"));
        // and the example re-mines to an equivalent cover
        let outfile = tmp_csv("design_out.csv", "");
        run_cli(&["design", "--output", &outfile, &path]).unwrap();
        let r = csv::read_csv_file(&outfile).unwrap();
        let mined = depminer_fdtheory::mine_minimal_fds(&r);
        let (schema, fds) = depminer_fdtheory::fdfile::parse(FD_FILE).unwrap();
        assert_eq!(schema.arity(), 3);
        assert!(depminer_fdtheory::equivalent(&mined, &fds));
    }

    #[test]
    fn prove_derives_and_refutes() {
        let path = tmp_csv("prove.txt", FD_FILE);
        let out = run_cli(&["prove", "--goal", "city street -> city zip", &path]).unwrap();
        assert!(out.contains("derivation"));
        assert!(out.contains("transitivity") || out.contains("reflexivity"));
        let out = run_cli(&["prove", "--goal", "zip -> street", &path]).unwrap();
        assert!(out.contains("does NOT imply"));
        assert!(out.contains("counterexample"));
        assert_eq!(run_cli(&["prove", &path]).unwrap_err().code, 2);
    }

    #[test]
    fn fds_save_roundtrips_into_design() {
        // mine -> save as FD file -> design reproduces an equivalent example.
        let data = tmp_csv("save_in.csv", ZIP_CSV);
        let fdfile = tmp_csv("save_out.txt", "");
        let out = run_cli(&["fds", "--save", &fdfile, &data]).unwrap();
        assert!(out.contains("saved FD file"));
        let design_out = run_cli(&["design", &fdfile]).unwrap();
        assert!(design_out.contains("Armstrong relation"));
        let proof = run_cli(&["prove", "--goal", "zip -> city", &fdfile]).unwrap();
        assert!(proof.contains("derivation"));
    }

    #[test]
    fn fd_file_parse_errors() {
        let bad1 = tmp_csv("bad1.txt", "city street -> zip\n");
        assert_eq!(run_cli(&["design", &bad1]).unwrap_err().code, 1);
        let bad2 = tmp_csv("bad2.txt", "attributes: a b\na b c -> a\n");
        assert_eq!(run_cli(&["design", &bad2]).unwrap_err().code, 1);
        let bad3 = tmp_csv("bad3.txt", "attributes: a b\na b\n");
        assert_eq!(run_cli(&["design", &bad3]).unwrap_err().code, 1);
    }

    #[test]
    fn inds_across_files() {
        let customers = tmp_csv("ind_customers.csv", "id,zip\n1,10\n2,20\n3,30\n");
        let orders = tmp_csv("ind_orders.csv", "oid,customer\n100,1\n101,3\n");
        let out = run_cli(&["inds", &customers, &orders]).unwrap();
        assert!(out.contains("[customer]"), "missing FK IND:\n{out}");
        assert!(out.contains("⊆"));
        assert_eq!(run_cli(&["inds"]).unwrap_err().code, 2);
    }

    /// Like [`run_cli`] but keeps the captured output even when the
    /// command fails (budget-exhausted runs print partial results first).
    fn run_cli_capture(args: &[&str]) -> (String, Result<(), CliError>) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let res = run(&args, &mut out);
        (String::from_utf8(out).expect("utf8 output"), res)
    }

    #[test]
    fn budget_flags_pass_through_when_generous() {
        let path = tmp_csv("budget_ok.csv", ZIP_CSV);
        for algo in ["depminer", "depminer2", "tane", "fdep"] {
            let out = run_cli(&[
                "fds",
                "--algo",
                algo,
                "--timeout",
                "60",
                "--max-couples",
                "1000000",
                &path,
            ])
            .unwrap();
            assert!(out.contains("zip -> city"), "algo {algo}:\n{out}");
            assert!(!out.contains("PARTIAL"), "algo {algo}:\n{out}");
        }
        let out = run_cli(&["armstrong", "--timeout", "60", &path]).unwrap();
        assert!(out.contains("Armstrong relation"));
        let out = run_cli(&["approx", "--epsilon", "0.5", "--timeout", "60", &path]).unwrap();
        assert!(out.contains("g3 ="));
    }

    #[test]
    fn exhausted_budget_exits_with_code_3_and_diagnostics() {
        let path = tmp_csv("budget_trip.csv", ZIP_CSV);
        let (out, res) = run_cli_capture(&["fds", "--max-couples", "0", &path]);
        let err = res.unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("budget exhausted"), "{}", err.message);
        assert!(out.contains("PARTIAL"), "{out}");
        assert!(out.contains("run interrupted"), "{out}");
        assert!(out.contains("agree-sets"), "{out}");

        let (out, res) = run_cli_capture(&["armstrong", "--max-couples", "0", &path]);
        assert_eq!(res.unwrap_err().code, 3);
        assert!(out.contains("no Armstrong relation"), "{out}");

        let (_, res) = run_cli_capture(&[
            "approx",
            "--epsilon",
            "0.5",
            "--timeout",
            "0.000000001",
            &path,
        ]);
        assert_eq!(res.unwrap_err().code, 3);
    }

    #[test]
    fn budget_flag_validation() {
        let path = tmp_csv("budget_bad.csv", ZIP_CSV);
        // naive has no governed variant
        assert_eq!(
            run_cli(&["fds", "--algo", "naive", "--timeout", "60", &path])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_cli(&["fds", "--timeout", "abc", &path])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_cli(&["fds", "--timeout", "-1", &path])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_cli(&["fds", "--max-couples", "-1", &path])
                .unwrap_err()
                .code,
            2
        );
        for bad in ["abc", "0", "-1", "12t", "99999999999g"] {
            assert_eq!(
                run_cli(&["fds", "--max-memory", bad, &path])
                    .unwrap_err()
                    .code,
                2,
                "--max-memory {bad} must be a usage error"
            );
        }
    }

    /// Fresh per-test checkpoint directory (cleared of stale snapshots).
    fn tmp_ckpt_dir(name: &str) -> String {
        let dir = std::env::temp_dir().join("depminer_cli_tests").join(name);
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::create_dir_all(&dir).unwrap();
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn timeout_zero_trips_at_first_checkpoint() {
        // `--timeout 0` is a legal budget, not a usage error: the run trips
        // at its first checkpoint and exits 3 with an empty-but-well-formed
        // partial result (header + diagnostics, zero FD lines).
        let path = tmp_csv("timeout_zero.csv", ZIP_CSV);
        for algo in ["depminer", "depminer2", "tane", "fdep"] {
            let (out, res) = run_cli_capture(&["fds", "--algo", algo, "--timeout", "0", &path]);
            let err = res.unwrap_err();
            assert_eq!(err.code, 3, "algo {algo}: {}", err.message);
            assert!(err.message.contains("budget exhausted"), "{}", err.message);
            assert!(
                out.contains("0 minimal non-trivial FDs"),
                "algo {algo}:\n{out}"
            );
            assert!(out.contains("[PARTIAL]"), "algo {algo}:\n{out}");
            assert!(out.contains("run interrupted"), "algo {algo}:\n{out}");
            assert!(!out.contains("->"), "algo {algo} leaked FD lines:\n{out}");
        }
        let (_, res) = run_cli_capture(&["approx", "--epsilon", "0.5", "--timeout", "0", &path]);
        assert_eq!(res.unwrap_err().code, 3);
    }

    #[test]
    fn checkpoint_then_resume_round_trip() {
        let path = tmp_csv("ckpt_roundtrip.csv", ZIP_CSV);
        let dir = tmp_ckpt_dir("roundtrip");
        let baseline = run_cli(&["fds", "--algo", "tane", &path]).unwrap();
        let baseline_fds: Vec<&str> = baseline.lines().filter(|l| !l.starts_with('#')).collect();

        // Trip at the first checkpoint; the pending level-0 snapshot is
        // flushed to <dir>/tane.snap on the way out.
        let (out, res) = run_cli_capture(&[
            "fds",
            "--algo",
            "tane",
            "--timeout",
            "0",
            "--checkpoint-dir",
            &dir,
            &path,
        ]);
        assert_eq!(res.unwrap_err().code, 3, "{out}");
        let snap_path = std::path::Path::new(&dir).join("tane.snap");
        assert!(snap_path.exists(), "no snapshot written to {dir}");

        // Resume without a budget: completes, matches the baseline FD set,
        // and deletes the consumed snapshot.
        let out = run_cli(&["resume", "--checkpoint-dir", &dir, &path]).unwrap();
        assert!(out.contains("resumed tane"), "{out}");
        assert!(!out.contains("PARTIAL"), "{out}");
        let resumed_fds: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(resumed_fds, baseline_fds, "resume diverged from baseline");
        assert!(!snap_path.exists(), "completed resume must delete snapshot");

        // Nothing left to resume now.
        assert_eq!(
            run_cli(&["resume", "--checkpoint-dir", &dir, &path])
                .unwrap_err()
                .code,
            1
        );
    }

    #[test]
    fn resume_flag_validation() {
        let path = tmp_csv("resume_usage.csv", ZIP_CSV);
        // --checkpoint-dir is mandatory for resume.
        assert_eq!(run_cli(&["resume", &path]).unwrap_err().code, 2);
        // --checkpoint-every / --checkpoint-interval need --checkpoint-dir.
        assert_eq!(
            run_cli(&["fds", "--checkpoint-every", "2", &path])
                .unwrap_err()
                .code,
            2
        );
        let dir = tmp_ckpt_dir("flag_validation");
        assert_eq!(
            run_cli(&[
                "fds",
                "--checkpoint-dir",
                &dir,
                "--checkpoint-every",
                "0",
                &path
            ])
            .unwrap_err()
            .code,
            2
        );
        assert_eq!(
            run_cli(&["resume", "--checkpoint-dir", &dir, "--algo", "nope", &path])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn corrupted_snapshot_is_refused_with_exit_4() {
        let path = tmp_csv("ckpt_corrupt.csv", ZIP_CSV);
        let dir = tmp_ckpt_dir("corrupt");
        let (_, res) = run_cli_capture(&[
            "fds",
            "--algo",
            "tane",
            "--timeout",
            "0",
            "--checkpoint-dir",
            &dir,
            &path,
        ]);
        assert_eq!(res.unwrap_err().code, 3);
        let snap_path = std::path::Path::new(&dir).join("tane.snap");
        let pristine = std::fs::read(&snap_path).unwrap();

        // A flipped byte anywhere must be caught by the CRC.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&snap_path, &flipped).unwrap();
        let err = run_cli(&["resume", "--checkpoint-dir", &dir, &path]).unwrap_err();
        assert_eq!(err.code, 4, "{}", err.message);
        assert!(err.message.contains("snapshot unusable"), "{}", err.message);

        // A truncated (torn) file likewise.
        std::fs::write(&snap_path, &pristine[..pristine.len() - 3]).unwrap();
        let err = run_cli(&["resume", "--checkpoint-dir", &dir, &path]).unwrap_err();
        assert_eq!(err.code, 4, "{}", err.message);

        // A snapshot taken for a different relation is a mismatch, not a
        // silent wrong answer.
        std::fs::write(&snap_path, &pristine).unwrap();
        let other = tmp_csv("ckpt_other.csv", "a,b\n1,1\n2,2\n3,3\n");
        let err = run_cli(&["resume", "--checkpoint-dir", &dir, &other]).unwrap_err();
        assert_eq!(err.code, 4, "{}", err.message);
    }

    #[test]
    fn max_memory_flag_caps_and_passes_through() {
        let path = tmp_csv("budget_mem.csv", ZIP_CSV);
        // Generous cap (suffixed form): run completes.
        for size in ["1g", "64M", "1048576"] {
            let out = run_cli(&["fds", "--algo", "tane", "--max-memory", size, &path]).unwrap();
            assert!(out.contains("zip -> city"), "size {size}:\n{out}");
            assert!(!out.contains("PARTIAL"), "size {size}:\n{out}");
        }
        // A relation whose level-2 partitions are non-empty (no 2-attribute
        // key), so TANE must charge owned partition storage: a 1-byte cap
        // trips even after the cache evicts everything dead, and the run
        // exits 3 with the level-1 partial result.
        let csv = "a,b,c\n1,1,1\n1,1,2\n2,2,1\n2,2,2\n3,3,1\n3,3,2\n";
        let path = tmp_csv("budget_mem_trip.csv", csv);
        let (out, res) = run_cli_capture(&["fds", "--algo", "tane", "--max-memory", "1", &path]);
        assert_eq!(res.unwrap_err().code, 3);
        assert!(out.contains("PARTIAL"), "{out}");
    }

    #[test]
    fn fds_algo_all_agrees_with_single_miners() {
        let path = tmp_csv("all_algo.csv", ZIP_CSV);
        let out = run_cli(&["fds", "--algo", "all", &path]).unwrap();
        assert!(out.contains("zip -> city"), "{out}");
        assert!(out.contains("algo = all"), "{out}");
        assert!(!out.contains("PARTIAL"), "{out}");
    }

    #[test]
    fn profile_flag_writes_validating_span_tree() {
        let path = tmp_csv("profile_in.csv", ZIP_CSV);
        let profile_out = tmp_csv("profile_out.json", "");
        let out = run_cli(&["fds", "--algo", "all", "--profile", &profile_out, &path]).unwrap();
        assert!(out.contains("profile written to"), "{out}");
        let text = std::fs::read_to_string(&profile_out).unwrap();
        // Every stage of all three miners shows up and the tree validates.
        let required = [
            "depminer",
            "agree-sets",
            "max-sets",
            "transversals",
            "tane",
            "tane-levels",
            "fdep",
            "negative-cover",
            "fdep-inversion",
        ];
        let names =
            depminer_govern::observe::profile::validate_profile_json(&text, &required).unwrap();
        assert!(names.contains(&"agree-sets".to_string()));
        // Counters made it into the export.
        assert!(text.contains("fd_emissions"), "{text}");
        assert!(text.contains("couples_scanned"), "{text}");
    }

    #[test]
    fn profile_with_single_algo_covers_its_stages() {
        let path = tmp_csv("profile_single.csv", ZIP_CSV);
        let profile_out = tmp_csv("profile_single_out.json", "");
        run_cli(&["fds", "--profile", &profile_out, &path]).unwrap();
        let text = std::fs::read_to_string(&profile_out).unwrap();
        let required = ["depminer", "agree-sets", "max-sets", "transversals"];
        depminer_govern::observe::profile::validate_profile_json(&text, &required).unwrap();
    }

    #[test]
    fn trace_flag_is_boolean_and_accepted() {
        // --trace streams to stderr (not captured here); the command must
        // still succeed and --trace must not swallow the file positional.
        let path = tmp_csv("trace_in.csv", ZIP_CSV);
        let out = run_cli(&["fds", "--trace", &path]).unwrap();
        assert!(out.contains("zip -> city"), "{out}");
    }

    #[test]
    fn profile_rejected_for_naive_algo() {
        let path = tmp_csv("profile_naive.csv", ZIP_CSV);
        let profile_out = tmp_csv("profile_naive_out.json", "");
        let err =
            run_cli(&["fds", "--algo", "naive", "--profile", &profile_out, &path]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn flag_parsing_edge_cases() {
        assert_eq!(run_cli(&["fds", "--algo"]).unwrap_err().code, 2);
        assert_eq!(run_cli(&["fds"]).unwrap_err().code, 2);
        assert_eq!(run_cli(&["fds", "a.csv", "b.csv"]).unwrap_err().code, 2);
    }
}
