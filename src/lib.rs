//! # depminer
//!
//! A complete Rust reproduction of
//! *"Efficient Discovery of Functional Dependencies and Armstrong
//! Relations"* (Stéphane Lopes, Jean-Marc Petit, Lotfi Lakhal — EDBT 2000):
//! the **Dep-Miner** algorithm, the **TANE** baseline it is evaluated
//! against, and every substrate both depend on.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`relation`] | `depminer-relation` | schemas, relations, partitions, stripped partition databases, synthetic benchmark generator, CSV |
//! | [`hypergraph`] | `depminer-hypergraph` | simple hypergraphs, minimal transversals (levelwise + Berge) |
//! | [`fdtheory`] | `depminer-fdtheory` | closures, covers, keys, closed sets, Armstrong criterion, normalization |
//! | [`depminer`] | `depminer-core` | agree sets (Algorithms 2/3), maximal sets, lhs, FD output, Armstrong relations, keys |
//! | [`tane`] | `depminer-tane` | exact TANE, approximate FDs (g₁/g₂/g₃), Armstrong extension |
//! | [`fdep`] | `depminer-fdep` | the FDEP baseline: negative cover + FD-tree |
//! | [`engine`] | `depminer-engine` | the `Miner` trait, `MinerRegistry`, and `Session` driver every CLI mining command dispatches through |
//! | [`ind`] | `depminer-ind` | unary inclusion dependencies (foreign-key hunting) |
//!
//! # Quick start
//!
//! ```
//! use depminer::prelude::*;
//!
//! // The paper's running example: employee assignments.
//! let r = depminer::relation::datasets::employee();
//!
//! // Discover all minimal non-trivial FDs …
//! let result = DepMiner::new().mine(&r);
//! assert_eq!(result.fds.len(), 14);
//!
//! // … and, for free, a 4-tuple real-world Armstrong relation sampling r.
//! let sample = result.real_world_armstrong(&r).unwrap();
//! assert_eq!(sample.len(), 4);
//!
//! // The TANE baseline finds the same cover.
//! let tane = Tane::new().run(&r);
//! assert_eq!(tane.fds, result.fds);
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use depminer_core as depminer;
pub use depminer_engine as engine;
pub use depminer_fdep as fdep;
pub use depminer_fdtheory as fdtheory;
pub use depminer_govern as govern;
pub use depminer_hypergraph as hypergraph;
pub use depminer_ind as ind;
pub use depminer_parallel as parallel;
pub use depminer_relation as relation;
pub use depminer_tane as tane;

/// One-stop imports for applications.
pub mod prelude {
    pub use depminer_core::{
        AgreeSetStrategy, DepMiner, MiningResult, Parallelism, TransversalEngine,
    };
    pub use depminer_fdep::Fdep;
    pub use depminer_fdtheory::Fd;
    pub use depminer_govern::{Budget, BudgetExceeded, CancelToken, MiningOutcome, StageReport};
    pub use depminer_relation::{
        AttrSet, Relation, Schema, StrippedPartitionDb, SyntheticConfig, Value,
    };
    pub use depminer_tane::{approximate_fds, Tane};
}
