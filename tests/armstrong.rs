//! End-to-end verification of Armstrong-relation generation: both the
//! classic integer construction and the paper's real-world construction
//! must *exactly* satisfy `dep(r)` — checked with the [BDFS84] criterion
//! `GEN(F) ⊆ ag(r̄) ⊆ CL(F)` and by re-mining the generated relation.

use depminer::fdtheory::{equivalent, is_armstrong_for, mine_minimal_fds};
use depminer::prelude::*;
use depminer::relation::Prng;

mod common;
use common::random_relation;

const CASES: usize = 48;

fn arb_relation(rng: &mut Prng) -> Relation {
    random_relation(rng, 2..=5, 2..=12, 1..=4)
}

#[test]
fn synthetic_armstrong_satisfies_exactly_dep_r() {
    let mut rng = Prng::seed_from_u64(0xA501);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let result = DepMiner::new().mine(&r);
        let arm = result.synthetic_armstrong();
        assert_eq!(arm.len(), result.armstrong_size());
        assert!(is_armstrong_for(&arm, &result.fds));
        // Re-mining the Armstrong relation yields an equivalent cover.
        let remined = mine_minimal_fds(&arm);
        assert!(equivalent(&remined, &result.fds));
        // For minimal covers of the same dep(r) the minimal FDs coincide.
        assert_eq!(remined, result.fds);
    }
}

#[test]
fn real_world_armstrong_when_it_exists() {
    let mut rng = Prng::seed_from_u64(0xA502);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let result = DepMiner::new().mine(&r);
        match result.real_world_armstrong(&r) {
            Ok(arm) => {
                assert_eq!(arm.len(), result.armstrong_size());
                assert!(is_armstrong_for(&arm, &result.fds));
                // Definition 1, condition 3: values from the active domain.
                for t in 0..arm.len() {
                    for a in 0..arm.arity() {
                        assert!(
                            r.column(a).distinct_values().contains(arm.value(t, a)),
                            "value not drawn from the initial relation"
                        );
                    }
                }
            }
            Err(_) => {
                // The existence condition must genuinely fail.
                let max = result.max_union();
                let violated = (0..r.arity()).any(|a| {
                    let needed = max.iter().filter(|x| !x.contains(a)).count() + 1;
                    r.column(a).distinct_count() < needed
                });
                assert!(violated, "construction refused although Prop. 1 holds");
            }
        }
    }
}

#[test]
fn armstrong_size_is_max_plus_one() {
    let mut rng = Prng::seed_from_u64(0xA503);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let result = DepMiner::new().mine(&r);
        assert_eq!(result.armstrong_size(), result.max_union().len() + 1);
        // And it never exceeds the trivial bound 2^|R|.
        assert!(result.armstrong_size() <= 1 << r.arity());
    }
}

#[test]
fn tane_extension_armstrong_equals_depminer_armstrong() {
    let mut rng = Prng::seed_from_u64(0xA504);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let dm = DepMiner::new().mine(&r);
        let tane = Tane::new().run(&r);
        // Same MAX(dep(r)) ⇒ same synthetic Armstrong relation.
        assert_eq!(dm.max_union(), tane.max_union());
        let a1 = dm.synthetic_armstrong();
        let a2 = tane.synthetic_armstrong();
        assert_eq!(a1.len(), a2.len());
        assert!(is_armstrong_for(&a2, &dm.fds));
    }
}

#[test]
fn paper_example_13_real_world_relation() {
    // The paper's real-world Armstrong relation for the employee example has
    // 4 tuples, starts with the first tuple of r, and draws every value from
    // the original columns.
    let r = depminer::relation::datasets::employee();
    let result = DepMiner::new().mine(&r);
    let arm = result.real_world_armstrong(&r).unwrap();
    assert_eq!(arm.len(), 4);
    assert_eq!(arm.row(0), r.row(0));
    assert!(is_armstrong_for(&arm, &result.fds));
    // Size ratio: 4/7 here, but orders of magnitude on benchmark data (§5.3).
    assert!(arm.len() <= r.len());
}

#[test]
fn armstrong_of_fd_free_relation_shows_all_nonexistence() {
    // For a relation with no non-trivial FDs, the Armstrong relation must
    // also have none: it witnesses the *nonexistence* of FDs (§1).
    let r = depminer::relation::datasets::no_fds();
    let result = DepMiner::new().mine(&r);
    let arm = result.synthetic_armstrong();
    assert!(mine_minimal_fds(&arm).is_empty());
}
