//! End-to-end verification of Armstrong-relation generation: both the
//! classic integer construction and the paper's real-world construction
//! must *exactly* satisfy `dep(r)` — checked with the [BDFS84] criterion
//! `GEN(F) ⊆ ag(r̄) ⊆ CL(F)` and by re-mining the generated relation.

use depminer::fdtheory::{equivalent, is_armstrong_for, mine_minimal_fds};
use depminer::prelude::*;
use proptest::prelude::*;

fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=5, 2usize..=12, 1u32..=4).prop_flat_map(|(n_attrs, n_rows, domain)| {
        proptest::collection::vec(proptest::collection::vec(0..=domain, n_rows), n_attrs).prop_map(
            move |cols| {
                Relation::from_columns(Schema::synthetic(n_attrs).expect("valid"), cols)
                    .expect("columns are rectangular")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synthetic_armstrong_satisfies_exactly_dep_r(r in arb_relation()) {
        let result = DepMiner::new().mine(&r);
        let arm = result.synthetic_armstrong();
        prop_assert_eq!(arm.len(), result.armstrong_size());
        prop_assert!(is_armstrong_for(&arm, &result.fds));
        // Re-mining the Armstrong relation yields an equivalent cover.
        let remined = mine_minimal_fds(&arm);
        prop_assert!(equivalent(&remined, &result.fds));
        // For minimal covers of the same dep(r) the minimal FDs coincide.
        prop_assert_eq!(remined, result.fds);
    }

    #[test]
    fn real_world_armstrong_when_it_exists(r in arb_relation()) {
        let result = DepMiner::new().mine(&r);
        match result.real_world_armstrong(&r) {
            Ok(arm) => {
                prop_assert_eq!(arm.len(), result.armstrong_size());
                prop_assert!(is_armstrong_for(&arm, &result.fds));
                // Definition 1, condition 3: values from the active domain.
                for t in 0..arm.len() {
                    for a in 0..arm.arity() {
                        prop_assert!(
                            r.column(a).distinct_values().contains(arm.value(t, a)),
                            "value not drawn from the initial relation"
                        );
                    }
                }
            }
            Err(_) => {
                // The existence condition must genuinely fail.
                let max = result.max_union();
                let violated = (0..r.arity()).any(|a| {
                    let needed = max.iter().filter(|x| !x.contains(a)).count() + 1;
                    r.column(a).distinct_count() < needed
                });
                prop_assert!(violated, "construction refused although Prop. 1 holds");
            }
        }
    }

    #[test]
    fn armstrong_size_is_max_plus_one(r in arb_relation()) {
        let result = DepMiner::new().mine(&r);
        prop_assert_eq!(result.armstrong_size(), result.max_union().len() + 1);
        // And it never exceeds the trivial bound 2^|R|.
        prop_assert!(result.armstrong_size() <= 1 << r.arity());
    }

    #[test]
    fn tane_extension_armstrong_equals_depminer_armstrong(r in arb_relation()) {
        let dm = DepMiner::new().mine(&r);
        let tane = Tane::new().run(&r);
        // Same MAX(dep(r)) ⇒ same synthetic Armstrong relation.
        prop_assert_eq!(dm.max_union(), tane.max_union());
        let a1 = dm.synthetic_armstrong();
        let a2 = tane.synthetic_armstrong();
        prop_assert_eq!(a1.len(), a2.len());
        prop_assert!(is_armstrong_for(&a2, &dm.fds));
    }
}

#[test]
fn paper_example_13_real_world_relation() {
    // The paper's real-world Armstrong relation for the employee example has
    // 4 tuples, starts with the first tuple of r, and draws every value from
    // the original columns.
    let r = depminer::relation::datasets::employee();
    let result = DepMiner::new().mine(&r);
    let arm = result.real_world_armstrong(&r).unwrap();
    assert_eq!(arm.len(), 4);
    assert_eq!(arm.row(0), r.row(0));
    assert!(is_armstrong_for(&arm, &result.fds));
    // Size ratio: 4/7 here, but orders of magnitude on benchmark data (§5.3).
    assert!(arm.len() <= r.len());
}

#[test]
fn armstrong_of_fd_free_relation_shows_all_nonexistence() {
    // For a relation with no non-trivial FDs, the Armstrong relation must
    // also have none: it witnesses the *nonexistence* of FDs (§1).
    let r = depminer::relation::datasets::no_fds();
    let result = DepMiner::new().mine(&r);
    let arm = result.synthetic_armstrong();
    assert!(mine_minimal_fds(&arm).is_empty());
}
