//! `AttrSet` behaviour at the 128-attribute ceiling (`MAX_ATTRS`):
//! full-universe complements, set algebra at bit 127, and rejection of
//! indices and schemas past the limit.

use depminer_relation::attrset::MAX_ATTRS;
use depminer_relation::{AttrSet, RelationError, Schema};
use std::panic::catch_unwind;

#[test]
fn full_universe_complement() {
    let full = AttrSet::full(MAX_ATTRS);
    assert_eq!(full.len(), MAX_ATTRS);
    assert_eq!(full.bits(), u128::MAX);
    // Complementing the full universe gives ∅ and vice versa.
    assert_eq!(full.difference(full), AttrSet::empty());
    assert_eq!(full.difference(AttrSet::empty()), full);
    // Per-element complement round-trips.
    for a in [0, 1, 63, 64, 126, 127] {
        let co = full.difference(AttrSet::singleton(a));
        assert_eq!(co.len(), MAX_ATTRS - 1);
        assert!(!co.contains(a));
        assert_eq!(full.difference(co), AttrSet::singleton(a));
    }
    // Narrower universes: the complement stays inside the universe.
    let full5 = AttrSet::full(5);
    assert_eq!(
        full5.difference(AttrSet::from_indices([0, 2])),
        AttrSet::from_indices([1, 3, 4])
    );
}

#[test]
fn algebra_at_bit_127() {
    let top = AttrSet::singleton(MAX_ATTRS - 1);
    assert_eq!(top.len(), 1);
    assert_eq!(top.min_attr(), Some(127));
    assert_eq!(top.max_attr(), Some(127));
    assert!(top.contains(127));
    assert_eq!(top.iter().collect::<Vec<_>>(), vec![127]);

    let lo = AttrSet::singleton(0);
    let both = top.union(lo);
    assert_eq!(both.len(), 2);
    assert_eq!((both.min_attr(), both.max_attr()), (Some(0), Some(127)));
    assert_eq!(both.intersection(top), top);
    assert_eq!(both.difference(top), lo);
    assert_eq!(both.without(127), lo);
    assert_eq!(lo.with(127), both);
    assert!(top.is_subset_of(both) && both.is_superset_of(top));
    assert!(top.intersects(both) && !top.intersects(lo));

    // In-place mutation at the boundary bit.
    let mut s = AttrSet::empty();
    s.insert(127);
    assert_eq!(s, top);
    s.remove(127);
    assert!(s.is_empty());

    // Bits round-trip through the raw representation.
    assert_eq!(AttrSet::from_bits(top.bits()), top);
    assert_eq!(top.bits(), 1u128 << 127);

    // drop_one on a set containing bit 127 yields the right subsets.
    let subs: Vec<AttrSet> = both.drop_one().collect();
    assert_eq!(subs.len(), 2);
    assert!(subs.contains(&top) && subs.contains(&lo));
}

#[test]
fn rejection_past_max_attrs() {
    // Constructors and in-place insertion panic past the ceiling.
    assert!(catch_unwind(|| AttrSet::singleton(MAX_ATTRS)).is_err());
    assert!(catch_unwind(|| AttrSet::full(MAX_ATTRS + 1)).is_err());
    assert!(catch_unwind(|| {
        let mut s = AttrSet::empty();
        s.insert(MAX_ATTRS);
    })
    .is_err());
    // Queries and removal stay total: out-of-range is absent, not UB.
    assert!(!AttrSet::full(MAX_ATTRS).contains(MAX_ATTRS));
    let mut s = AttrSet::full(MAX_ATTRS);
    s.remove(MAX_ATTRS); // no-op
    assert_eq!(s.len(), MAX_ATTRS);
}

#[test]
fn schema_rejects_width_past_max_attrs() {
    let names: Vec<String> = (0..MAX_ATTRS + 1).map(|i| format!("a{i}")).collect();
    match Schema::new(names) {
        Err(RelationError::SchemaTooWide { width }) => assert_eq!(width, MAX_ATTRS + 1),
        other => panic!("expected SchemaTooWide, got {other:?}"),
    }
    // Exactly MAX_ATTRS names is fine, and its all_attrs() is the full set.
    let names: Vec<String> = (0..MAX_ATTRS).map(|i| format!("a{i}")).collect();
    let schema = Schema::new(names).expect("128 attributes is the documented maximum");
    assert_eq!(schema.all_attrs(), AttrSet::full(MAX_ATTRS));
}
