//! Chaos property tests (`--features faults`): deterministic fault
//! injection at governance checkpoints.
//!
//! A seeded SplitMix64 `Prng` sweeps fault ordinals across each miner's
//! checkpoint range, so over the sweep every cooperative checkpoint
//! becomes an injection point. The property under test, for every
//! injection: the run yields either a complete result identical to the
//! fault-free baseline, or a well-formed partial one — never a hang, a
//! poisoned pool, or a silently wrong FD set. Partial Dep-Miner results
//! must pass `MiningResult::audit_claimed_fds` on the subset they claim;
//! partial TANE / approx results must be subsets of the fault-free cover.

#![cfg(feature = "faults")]

use depminer::depminer::{AgreeSetStrategy, DepMiner, TransversalEngine};
use depminer::fdep::Fdep;
use depminer::govern::faults::{FaultKind, FaultPlan};
use depminer::govern::snapshot::read_snapshot;
use depminer::govern::{Budget, Obs, Resource, SnapshotError, SnapshotPolicy};
use depminer::relation::{Prng, Relation, SyntheticConfig};
use depminer::tane::{
    approximate_fds, approximate_fds_governed, resume_approximate_fds_governed, Tane,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// A small but structurally rich workload: enough agree sets, lattice
/// levels, and transversal work that every stage sees checkpoints.
fn workload() -> Relation {
    SyntheticConfig {
        n_attrs: 8,
        n_rows: 80,
        correlation: 0.6,
        seed: 0xC4A0_5001,
    }
    .generate()
    .expect("valid synthetic config")
}

/// The miner configurations under chaos (both agree-set algorithms and
/// both transversal engines that differ structurally).
fn miners() -> Vec<DepMiner> {
    vec![
        DepMiner::algorithm_2(None),
        DepMiner::algorithm_3(),
        DepMiner {
            strategy: AgreeSetStrategy::Naive,
            ..DepMiner::new()
        }
        .with_engine(TransversalEngine::Berge),
        DepMiner::new().with_engine(TransversalEngine::Dfs),
    ]
}

/// Ordinal range the sweeps draw from. Large enough to land beyond the
/// final checkpoint sometimes — those runs must complete and match the
/// baseline exactly, which is itself part of the property.
const ORDINAL_RANGE: std::ops::Range<u64> = 0..600;

#[test]
fn injected_cancellation_yields_complete_or_audited_partial() {
    let r = workload();
    let mut rng = Prng::seed_from_u64(0xFA01);
    for miner in miners() {
        let baseline = miner.mine(&r);
        for _ in 0..12 {
            let at = rng.gen_range(ORDINAL_RANGE);
            let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Cancel, at));
            let outcome = miner.mine_with_token(&r, &token);
            match &outcome.interrupted {
                None => assert_eq!(outcome.result.fds, baseline.fds, "ordinal {at}"),
                Some(why) => {
                    assert_eq!(why.resource, Resource::InjectedFault, "ordinal {at}");
                    outcome
                        .result
                        .audit_claimed_fds(&r)
                        .unwrap_or_else(|e| panic!("ordinal {at}: bad partial: {e}"));
                    // Claimed FDs must come from the true cover — a
                    // partial run may drop FDs, never invent them.
                    for fd in &outcome.result.fds {
                        assert!(baseline.fds.contains(fd), "ordinal {at}: invented {fd}");
                    }
                }
            }
        }
    }
}

#[test]
fn injected_memory_exhaustion_yields_complete_or_audited_partial() {
    let r = workload();
    let miner = DepMiner::new();
    let baseline = miner.mine(&r);
    let mut rng = Prng::seed_from_u64(0xFA02);
    for _ in 0..20 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token =
            Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::MemoryExhaust, at));
        let outcome = miner.mine_with_token(&r, &token);
        match &outcome.interrupted {
            None => assert_eq!(outcome.result.fds, baseline.fds, "ordinal {at}"),
            Some(why) => {
                assert_eq!(why.resource, Resource::Memory, "ordinal {at}");
                outcome
                    .result
                    .audit_claimed_fds(&r)
                    .unwrap_or_else(|e| panic!("ordinal {at}: bad partial: {e}"));
            }
        }
    }
}

#[test]
fn injected_worker_panic_never_poisons_the_pool() {
    let r = workload();
    let miner = DepMiner::new();
    let baseline = miner.mine(&r).fds;
    let mut rng = Prng::seed_from_u64(0xFA03);
    for _ in 0..12 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Panic, at));
        let run = catch_unwind(AssertUnwindSafe(|| miner.mine_with_token(&r, &token)));
        if let Ok(outcome) = run {
            // The armed ordinal was past the last checkpoint: a clean,
            // complete, correct run.
            assert!(outcome.is_complete(), "ordinal {at}");
            assert_eq!(outcome.result.fds, baseline, "ordinal {at}");
        }
        // Whether the panic fired or not, the runtime must be reusable:
        // an immediate fault-free rerun produces the exact baseline.
        assert_eq!(miner.mine(&r).fds, baseline, "rerun after ordinal {at}");
    }
}

#[test]
fn tane_under_injected_faults_is_exact_or_a_clean_prefix() {
    let r = workload();
    let tane = Tane::new();
    let baseline = tane.run(&r).fds;
    let mut rng = Prng::seed_from_u64(0xFA04);
    for kind in [FaultKind::Cancel, FaultKind::MemoryExhaust] {
        for _ in 0..10 {
            let at = rng.gen_range(ORDINAL_RANGE);
            let token = Budget::unlimited().start_with_fault(FaultPlan::new(kind, at));
            let outcome = tane.run_with_token(&r, &token);
            if outcome.is_complete() {
                assert_eq!(outcome.result.fds, baseline, "{kind:?} ordinal {at}");
            } else {
                for fd in &outcome.result.fds {
                    assert!(
                        baseline.contains(fd),
                        "{kind:?} ordinal {at}: invented {fd}"
                    );
                }
            }
        }
    }
    // Panic injection: the lattice walk unwinds without corrupting
    // process-wide state; reruns stay exact.
    for _ in 0..6 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Panic, at));
        let _ = catch_unwind(AssertUnwindSafe(|| tane.run_with_token(&r, &token)));
        assert_eq!(tane.run(&r).fds, baseline, "rerun after ordinal {at}");
    }
}

#[test]
fn approx_under_injected_faults_reports_only_valid_entries() {
    let r = workload();
    let epsilon = 0.05;
    let baseline = approximate_fds(&r, epsilon);
    let mut rng = Prng::seed_from_u64(0xFA05);
    for _ in 0..10 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Cancel, at));
        let outcome = approximate_fds_governed(&r, epsilon, &token);
        if outcome.is_complete() {
            assert_eq!(outcome.result, baseline, "ordinal {at}");
        } else {
            // Every reported entry must appear in the full answer with
            // the same g3 error.
            for afd in &outcome.result {
                assert!(
                    baseline
                        .iter()
                        .any(|b| b.fd == afd.fd && b.error == afd.error),
                    "ordinal {at}: invented {:?}",
                    afd.fd
                );
            }
        }
    }
}

/// Fresh per-test snapshot directory.
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("depminer_chaos_tests").join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The chaos-resume property, shared by the per-miner tests below: for
/// each injected-cancellation ordinal, run with boundary snapshots
/// armed; when the trip leaves a frame behind, resuming it must
/// complete to an FD set identical to the fault-free baseline. Returns
/// how many ordinals actually exercised a resume.
fn chaos_resume_sweep<T, FRun, FResume, FAssert>(
    dir: &PathBuf,
    algo_id: &str,
    seed: u64,
    ordinals: usize,
    run: FRun,
    resume: FResume,
    assert_baseline: FAssert,
) -> usize
where
    FRun: Fn(&depminer::govern::CancelToken) -> bool,
    FResume: Fn(&depminer::govern::Snapshot) -> Result<T, SnapshotError>,
    FAssert: Fn(u64, T),
{
    let path = dir.join(format!("{algo_id}.snap"));
    let mut rng = Prng::seed_from_u64(seed);
    let mut resumed = 0;
    for _ in 0..ordinals {
        let at = rng.gen_range(ORDINAL_RANGE);
        std::fs::remove_file(&path).ok();
        let policy = SnapshotPolicy::new(dir).every_boundaries(1);
        let token = Budget::unlimited()
            .start_with_fault(FaultPlan::new(FaultKind::Cancel, at))
            .with_snapshots(policy);
        let complete = run(&token);
        if complete {
            assert!(
                !path.exists(),
                "ordinal {at}: completed run must discard its snapshot"
            );
            continue;
        }
        if !path.exists() {
            // Tripped before the first boundary (or inside a stage whose
            // state is deliberately unresumable, like FDEP's negative
            // cover): nothing to resume is a legal outcome.
            continue;
        }
        let snap = read_snapshot(&path)
            .unwrap_or_else(|e| panic!("ordinal {at}: tripped run left an unreadable frame: {e}"));
        let result =
            resume(&snap).unwrap_or_else(|e| panic!("ordinal {at}: pristine frame refused: {e}"));
        assert_baseline(at, result);
        resumed += 1;
    }
    resumed
}

#[test]
fn depminer_resume_after_injected_trip_matches_fault_free_baseline() {
    let r = workload();
    let miner = DepMiner::new();
    let baseline = miner.mine(&r).fds;
    let dir = tmp_dir("resume_depminer");
    let resumed = chaos_resume_sweep(
        &dir,
        "depminer",
        0xFA10,
        15,
        |token| miner.mine_with_token(&r, token).is_complete(),
        |snap| miner.resume_governed(&r, snap, &Budget::unlimited(), Obs::none(), None),
        |at, out| {
            assert!(out.is_complete(), "ordinal {at}: resume tripped");
            out.result
                .audit_claimed_fds(&r)
                .unwrap_or_else(|e| panic!("ordinal {at}: resumed cover failed audit: {e}"));
            assert_eq!(out.result.fds, baseline, "ordinal {at}");
        },
    );
    assert!(resumed > 0, "sweep never resumed; ordinal range too narrow");
}

#[test]
fn tane_resume_after_injected_trip_matches_fault_free_baseline() {
    let r = workload();
    let tane = Tane::new();
    let baseline = tane.run(&r).fds;
    let dir = tmp_dir("resume_tane");
    let resumed = chaos_resume_sweep(
        &dir,
        "tane",
        0xFA11,
        15,
        |token| tane.run_with_token(&r, token).is_complete(),
        |snap| tane.resume_governed(&r, snap, &Budget::unlimited(), Obs::none(), None),
        |at, out| {
            assert!(out.is_complete(), "ordinal {at}: resume tripped");
            assert_eq!(out.result.fds, baseline, "ordinal {at}");
        },
    );
    assert!(resumed > 0, "sweep never resumed; ordinal range too narrow");
}

#[test]
fn approx_resume_after_injected_trip_matches_fault_free_baseline() {
    let r = workload();
    let epsilon = 0.05;
    let baseline = approximate_fds(&r, epsilon);
    let dir = tmp_dir("resume_approx");
    let resumed = chaos_resume_sweep(
        &dir,
        "tane-approx",
        0xFA12,
        15,
        |token| approximate_fds_governed(&r, epsilon, token).is_complete(),
        |snap| {
            resume_approximate_fds_governed(
                &r,
                epsilon,
                snap,
                &Budget::unlimited(),
                Obs::none(),
                None,
            )
        },
        |at, out| {
            assert!(out.is_complete(), "ordinal {at}: resume tripped");
            assert_eq!(out.result, baseline, "ordinal {at}");
        },
    );
    assert!(resumed > 0, "sweep never resumed; ordinal range too narrow");
}

#[test]
fn fdep_resume_after_injected_trip_matches_fault_free_baseline() {
    let r = workload();
    let fdep = Fdep::new();
    let baseline = fdep.run(&r).fds;
    let dir = tmp_dir("resume_fdep");
    let resumed = chaos_resume_sweep(
        &dir,
        "fdep",
        0xFA13,
        15,
        |token| fdep.run_with_token(&r, token).is_complete(),
        |snap| fdep.resume_governed(&r, snap, &Budget::unlimited(), Obs::none(), None),
        |at, out| {
            assert!(out.is_complete(), "ordinal {at}: resume tripped");
            assert_eq!(out.result.fds, baseline, "ordinal {at}");
        },
    );
    assert!(resumed > 0, "sweep never resumed; ordinal range too narrow");
}

#[test]
fn torn_and_bit_flipped_snapshot_writes_are_always_detected() {
    // Arm a writer-targeting fault on the single on-trip flush write (no
    // periodic policy, so the flush is write #0), then verify the frame
    // on disk is refused — a corrupted snapshot must never be mined into
    // a silently wrong cover.
    let r = workload();
    let tane = Tane::new();
    let dir = tmp_dir("writer_corruption");
    let path = dir.join("tane.snap");
    let mut rng = Prng::seed_from_u64(0xFA14);
    // Truncation points below any frame's length plus random bit offsets
    // (the writer wraps them to the frame length).
    let torn: Vec<FaultKind> = [0u64, 1, 8, 13, 21]
        .iter()
        .map(|&at_byte| FaultKind::TornWrite { at_byte })
        .collect();
    let flips: Vec<FaultKind> = (0..8)
        .map(|_| FaultKind::BitFlip {
            offset: rng.next_u64(),
        })
        .collect();
    for kind in torn.into_iter().chain(flips) {
        std::fs::remove_file(&path).ok();
        let policy = SnapshotPolicy::new(&dir);
        let token = Budget::unlimited()
            .with_max_candidates(6)
            .start_with_fault(FaultPlan::new(kind, 0))
            .with_snapshots(policy);
        let outcome = tane.run_with_token(&r, &token);
        assert!(!outcome.is_complete(), "{kind:?}: cap of 6 must trip");
        assert!(path.exists(), "{kind:?}: flush wrote nothing");
        match read_snapshot(&path) {
            Err(SnapshotError::Corrupt { .. }) => {}
            Err(other) => panic!("{kind:?}: expected Corrupt, got {other}"),
            Ok(_) => panic!("{kind:?}: corrupted frame decoded cleanly"),
        }
    }
}

#[test]
fn every_fault_kind_reports_a_first_trip_reason_once() {
    // Firing at checkpoint 0 stops each stage as early as possible; the
    // outcome must still be a well-formed (empty-ish) partial.
    let r = workload();
    for (kind, resource) in [
        (FaultKind::Cancel, Resource::InjectedFault),
        (FaultKind::MemoryExhaust, Resource::Memory),
    ] {
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(kind, 0));
        let outcome = DepMiner::new().mine_with_token(&r, &token);
        let why = outcome
            .interrupted
            .as_ref()
            .expect("must trip at ordinal 0");
        assert_eq!(why.resource, resource);
        assert!(
            outcome.result.fds.is_empty(),
            "{kind:?}: {:?}",
            outcome.result.fds
        );
        outcome
            .result
            .audit_claimed_fds(&r)
            .expect("empty claim audits clean");
        assert!(!outcome.stages.is_empty());
        assert!(outcome.stages.iter().any(|s| !s.completed));
    }
}
