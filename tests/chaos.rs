//! Chaos property tests (`--features faults`): deterministic fault
//! injection at governance checkpoints.
//!
//! A seeded SplitMix64 `Prng` sweeps fault ordinals across each miner's
//! checkpoint range, so over the sweep every cooperative checkpoint
//! becomes an injection point. The property under test, for every
//! injection: the run yields either a complete result identical to the
//! fault-free baseline, or a well-formed partial one — never a hang, a
//! poisoned pool, or a silently wrong FD set. Partial Dep-Miner results
//! must pass `MiningResult::audit_claimed_fds` on the subset they claim;
//! partial TANE / approx results must be subsets of the fault-free cover.

#![cfg(feature = "faults")]

use depminer::depminer::{AgreeSetStrategy, DepMiner, TransversalEngine};
use depminer::govern::faults::{FaultKind, FaultPlan};
use depminer::govern::{Budget, Resource};
use depminer::relation::{Prng, Relation, SyntheticConfig};
use depminer::tane::{approximate_fds, approximate_fds_governed, Tane};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A small but structurally rich workload: enough agree sets, lattice
/// levels, and transversal work that every stage sees checkpoints.
fn workload() -> Relation {
    SyntheticConfig {
        n_attrs: 8,
        n_rows: 80,
        correlation: 0.6,
        seed: 0xC4A0_5001,
    }
    .generate()
    .expect("valid synthetic config")
}

/// The miner configurations under chaos (both agree-set algorithms and
/// both transversal engines that differ structurally).
fn miners() -> Vec<DepMiner> {
    vec![
        DepMiner::algorithm_2(None),
        DepMiner::algorithm_3(),
        DepMiner {
            strategy: AgreeSetStrategy::Naive,
            ..DepMiner::new()
        }
        .with_engine(TransversalEngine::Berge),
        DepMiner::new().with_engine(TransversalEngine::Dfs),
    ]
}

/// Ordinal range the sweeps draw from. Large enough to land beyond the
/// final checkpoint sometimes — those runs must complete and match the
/// baseline exactly, which is itself part of the property.
const ORDINAL_RANGE: std::ops::Range<u64> = 0..600;

#[test]
fn injected_cancellation_yields_complete_or_audited_partial() {
    let r = workload();
    let mut rng = Prng::seed_from_u64(0xFA01);
    for miner in miners() {
        let baseline = miner.mine(&r);
        for _ in 0..12 {
            let at = rng.gen_range(ORDINAL_RANGE);
            let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Cancel, at));
            let outcome = miner.mine_with_token(&r, &token);
            match &outcome.interrupted {
                None => assert_eq!(outcome.result.fds, baseline.fds, "ordinal {at}"),
                Some(why) => {
                    assert_eq!(why.resource, Resource::InjectedFault, "ordinal {at}");
                    outcome
                        .result
                        .audit_claimed_fds(&r)
                        .unwrap_or_else(|e| panic!("ordinal {at}: bad partial: {e}"));
                    // Claimed FDs must come from the true cover — a
                    // partial run may drop FDs, never invent them.
                    for fd in &outcome.result.fds {
                        assert!(baseline.fds.contains(fd), "ordinal {at}: invented {fd}");
                    }
                }
            }
        }
    }
}

#[test]
fn injected_memory_exhaustion_yields_complete_or_audited_partial() {
    let r = workload();
    let miner = DepMiner::new();
    let baseline = miner.mine(&r);
    let mut rng = Prng::seed_from_u64(0xFA02);
    for _ in 0..20 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token =
            Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::MemoryExhaust, at));
        let outcome = miner.mine_with_token(&r, &token);
        match &outcome.interrupted {
            None => assert_eq!(outcome.result.fds, baseline.fds, "ordinal {at}"),
            Some(why) => {
                assert_eq!(why.resource, Resource::Memory, "ordinal {at}");
                outcome
                    .result
                    .audit_claimed_fds(&r)
                    .unwrap_or_else(|e| panic!("ordinal {at}: bad partial: {e}"));
            }
        }
    }
}

#[test]
fn injected_worker_panic_never_poisons_the_pool() {
    let r = workload();
    let miner = DepMiner::new();
    let baseline = miner.mine(&r).fds;
    let mut rng = Prng::seed_from_u64(0xFA03);
    for _ in 0..12 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Panic, at));
        let run = catch_unwind(AssertUnwindSafe(|| miner.mine_with_token(&r, &token)));
        if let Ok(outcome) = run {
            // The armed ordinal was past the last checkpoint: a clean,
            // complete, correct run.
            assert!(outcome.is_complete(), "ordinal {at}");
            assert_eq!(outcome.result.fds, baseline, "ordinal {at}");
        }
        // Whether the panic fired or not, the runtime must be reusable:
        // an immediate fault-free rerun produces the exact baseline.
        assert_eq!(miner.mine(&r).fds, baseline, "rerun after ordinal {at}");
    }
}

#[test]
fn tane_under_injected_faults_is_exact_or_a_clean_prefix() {
    let r = workload();
    let tane = Tane::new();
    let baseline = tane.run(&r).fds;
    let mut rng = Prng::seed_from_u64(0xFA04);
    for kind in [FaultKind::Cancel, FaultKind::MemoryExhaust] {
        for _ in 0..10 {
            let at = rng.gen_range(ORDINAL_RANGE);
            let token = Budget::unlimited().start_with_fault(FaultPlan::new(kind, at));
            let outcome = tane.run_with_token(&r, &token);
            if outcome.is_complete() {
                assert_eq!(outcome.result.fds, baseline, "{kind:?} ordinal {at}");
            } else {
                for fd in &outcome.result.fds {
                    assert!(
                        baseline.contains(fd),
                        "{kind:?} ordinal {at}: invented {fd}"
                    );
                }
            }
        }
    }
    // Panic injection: the lattice walk unwinds without corrupting
    // process-wide state; reruns stay exact.
    for _ in 0..6 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Panic, at));
        let _ = catch_unwind(AssertUnwindSafe(|| tane.run_with_token(&r, &token)));
        assert_eq!(tane.run(&r).fds, baseline, "rerun after ordinal {at}");
    }
}

#[test]
fn approx_under_injected_faults_reports_only_valid_entries() {
    let r = workload();
    let epsilon = 0.05;
    let baseline = approximate_fds(&r, epsilon);
    let mut rng = Prng::seed_from_u64(0xFA05);
    for _ in 0..10 {
        let at = rng.gen_range(ORDINAL_RANGE);
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Cancel, at));
        let outcome = approximate_fds_governed(&r, epsilon, &token);
        if outcome.is_complete() {
            assert_eq!(outcome.result, baseline, "ordinal {at}");
        } else {
            // Every reported entry must appear in the full answer with
            // the same g3 error.
            for afd in &outcome.result {
                assert!(
                    baseline
                        .iter()
                        .any(|b| b.fd == afd.fd && b.error == afd.error),
                    "ordinal {at}: invented {:?}",
                    afd.fd
                );
            }
        }
    }
}

#[test]
fn every_fault_kind_reports_a_first_trip_reason_once() {
    // Firing at checkpoint 0 stops each stage as early as possible; the
    // outcome must still be a well-formed (empty-ish) partial.
    let r = workload();
    for (kind, resource) in [
        (FaultKind::Cancel, Resource::InjectedFault),
        (FaultKind::MemoryExhaust, Resource::Memory),
    ] {
        let token = Budget::unlimited().start_with_fault(FaultPlan::new(kind, 0));
        let outcome = DepMiner::new().mine_with_token(&r, &token);
        let why = outcome
            .interrupted
            .as_ref()
            .expect("must trip at ordinal 0");
        assert_eq!(why.resource, resource);
        assert!(
            outcome.result.fds.is_empty(),
            "{kind:?}: {:?}",
            outcome.result.fds
        );
        outcome
            .result
            .audit_claimed_fds(&r)
            .expect("empty claim audits clean");
        assert!(!outcome.stages.is_empty());
        assert!(outcome.stages.iter().any(|s| !s.completed));
    }
}
