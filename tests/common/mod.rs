//! Shared deterministic case generators for the integration tests.
//!
//! The suite used to rely on `proptest`; to keep the workspace buildable
//! with zero network access it now drives the same properties with the
//! in-tree [`Prng`]. Every generator is purely a function of the caller's
//! generator state, so failures reproduce exactly from the test's seed.
#![allow(dead_code)] // each test binary uses its own subset of helpers

use depminer::prelude::*;
use depminer::relation::Prng;
use std::ops::RangeInclusive;

/// A random relation with attribute count, row count and per-column domain
/// size drawn from the given ranges — the same shape distribution the old
/// proptest strategies produced.
pub fn random_relation(
    rng: &mut Prng,
    attrs: RangeInclusive<usize>,
    rows: RangeInclusive<usize>,
    domain: RangeInclusive<u32>,
) -> Relation {
    let n_attrs = rng.gen_range(attrs);
    let n_rows = rng.gen_range(rows);
    let domain = rng.gen_range(domain);
    let cols: Vec<Vec<u32>> = (0..n_attrs)
        .map(|_| (0..n_rows).map(|_| rng.gen_range(0..=domain)).collect())
        .collect();
    Relation::from_columns(Schema::synthetic(n_attrs).expect("valid"), cols)
        .expect("columns are rectangular")
}

/// A random attribute set over `n` attributes (uniform over all 2ⁿ subsets).
pub fn random_set(rng: &mut Prng, n: usize) -> AttrSet {
    AttrSet::from_bits(rng.gen_range(0u64..(1 << n)) as u128)
}

/// A random non-trivial FD universe element over `n` attributes.
pub fn random_fd(rng: &mut Prng, n: usize) -> depminer::fdtheory::Fd {
    depminer::fdtheory::Fd::new(random_set(rng, n), rng.gen_range(0..n))
}

/// A random FD set of up to `max_fds` dependencies over `n` attributes.
pub fn random_fds(rng: &mut Prng, n: usize, max_fds: usize) -> Vec<depminer::fdtheory::Fd> {
    let count = rng.gen_range(0..=max_fds);
    (0..count).map(|_| random_fd(rng, n)).collect()
}
