//! Three-way cross-validation of the miners on random relations:
//! Dep-Miner (all agree-set strategies × both transversal engines), TANE,
//! and the brute-force oracle must produce the *identical* set of minimal
//! non-trivial FDs — not just equivalent covers.

use depminer::fdtheory::{equivalent, mine_minimal_fds};
use depminer::prelude::*;
use depminer::relation::{Prng, StrippedPartitionDb};

mod common;
use common::random_relation;

const CASES: usize = 64;

#[test]
fn all_builtin_datasets_cross_validate() {
    use depminer::relation::datasets;
    let all = [
        datasets::employee(),
        datasets::enrollment(),
        datasets::constant_columns(),
        datasets::no_fds(),
        datasets::payroll(),
        datasets::flights(),
        datasets::antichain(5),
    ];
    for r in all {
        let oracle = mine_minimal_fds(&r);
        assert_eq!(DepMiner::algorithm_2(None).mine(&r).fds, oracle);
        assert_eq!(DepMiner::algorithm_3().mine(&r).fds, oracle);
        assert_eq!(Tane::new().run(&r).fds, oracle);
        assert_eq!(Fdep::new().run(&r).fds, oracle);
    }
}

#[test]
fn antichain_armstrong_is_itself_shaped() {
    // antichain(n)'s MAX is all (n-1)-subsets: the Armstrong relation has
    // n+1 tuples — the dataset is its own minimal Armstrong relation shape.
    for n in 2..=6 {
        let r = depminer::relation::datasets::antichain(n);
        let res = DepMiner::new().mine(&r);
        assert_eq!(res.armstrong_size(), n + 1);
        assert!(res.fds.is_empty());
    }
}

/// A random small relation: up to 6 attributes, up to 14 tuples, small
/// domains so FDs and agreements actually occur.
fn arb_relation(rng: &mut Prng) -> Relation {
    random_relation(rng, 2..=6, 0..=14, 1..=4)
}

#[test]
fn all_miners_agree_with_oracle() {
    let mut rng = Prng::seed_from_u64(0xC501);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let oracle = mine_minimal_fds(&r);
        let miners = [
            DepMiner::algorithm_2(None),
            DepMiner::algorithm_2(Some(3)),
            DepMiner::algorithm_3(),
            DepMiner::new().with_engine(TransversalEngine::Berge),
            DepMiner::new().with_engine(TransversalEngine::Dfs),
            DepMiner {
                strategy: AgreeSetStrategy::Naive,
                engine: TransversalEngine::Levelwise,
                ..DepMiner::new()
            },
        ];
        for miner in miners {
            let fds = miner.mine(&r).fds;
            assert_eq!(fds, oracle, "{miner:?} diverges from oracle");
        }
        let tane = Tane::new().run(&r).fds;
        assert_eq!(tane, oracle, "TANE diverges from oracle");
        let fdep = Fdep::new().run(&r).fds;
        assert_eq!(fdep, oracle, "FDEP diverges from oracle");
    }
}

#[test]
fn agree_set_strategies_coincide() {
    let mut rng = Prng::seed_from_u64(0xC502);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let db = StrippedPartitionDb::from_relation(&r);
        let naive = depminer::depminer::agree_sets_naive(&r);
        let alg2 = depminer::depminer::agree_sets_couples(&db, None);
        let alg2_chunked = depminer::depminer::agree_sets_couples(&db, Some(2));
        let alg2_nomc = depminer::depminer::agree_sets_couples_no_mc(&db, None);
        let alg3 = depminer::depminer::agree_sets_ec(&db);
        assert_eq!(alg2.sets, naive.sets);
        assert_eq!(alg2_chunked.sets, naive.sets);
        assert_eq!(alg2_nomc.sets, naive.sets);
        assert_eq!(alg3.sets, naive.sets);
        assert_eq!(alg3.constant_attrs, naive.constant_attrs);
    }
}

#[test]
fn discovered_fds_hold_and_are_minimal() {
    let mut rng = Prng::seed_from_u64(0xC503);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        for fd in DepMiner::new().mine(&r).fds {
            assert!(!fd.is_trivial());
            assert!(r.satisfies(fd.lhs, fd.rhs), "{fd} does not hold");
            for b in fd.lhs.iter() {
                assert!(
                    !r.satisfies(fd.lhs.without(b), fd.rhs),
                    "{fd} is not minimal"
                );
            }
        }
    }
}

#[test]
fn every_holding_fd_is_implied() {
    let mut rng = Prng::seed_from_u64(0xC504);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        // The mined cover must imply every FD that holds in r (spot-checked
        // on all single-attribute lhs and a few pairs).
        let fds = DepMiner::new().mine(&r).fds;
        let n = r.arity();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let lhs = AttrSet::singleton(b);
                if r.satisfies(lhs, a) {
                    assert!(
                        depminer::fdtheory::implies(&fds, Fd::new(lhs, a)),
                        "mined cover misses {b} -> {a}"
                    );
                }
            }
        }
    }
}

#[test]
fn tane_lhs_round_trip_matches_depminer_maxsets() {
    let mut rng = Prng::seed_from_u64(0xC505);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        // Nihilpotence in anger: max sets recovered from TANE's FDs via
        // Tr(lhs) equal Dep-Miner's directly computed max sets.
        let tane = Tane::new().run(&r);
        let dm = DepMiner::new().mine(&r);
        let rebuilt = depminer::tane::max_sets_from_fds(&tane.fds, r.arity());
        assert_eq!(rebuilt, dm.max_sets.max);
    }
}

#[test]
fn mined_covers_are_equivalent_across_engines() {
    let mut rng = Prng::seed_from_u64(0xC506);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let a = DepMiner::new().mine(&r).fds;
        let b = DepMiner::algorithm_3()
            .with_engine(TransversalEngine::Berge)
            .mine(&r)
            .fds;
        assert!(equivalent(&a, &b));
    }
}

#[test]
fn mining_results_pass_their_own_audit() {
    // The end-to-end invariant audit must accept every genuine result.
    let mut rng = Prng::seed_from_u64(0xC507);
    for _ in 0..16 {
        let r = arb_relation(&mut rng);
        DepMiner::new().mine(&r).audit(&r).unwrap();
    }
}
