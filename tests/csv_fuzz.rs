//! Property tests for the CSV layer: arbitrary values (including commas,
//! quotes, unicode, negative integers, NULLs) must round-trip exactly, and
//! mining results must be invariant under the round-trip.

use depminer::prelude::*;
use depminer::relation::csv;
use proptest::prelude::*;

/// Field text without control characters (the writer does not support
/// embedded newlines; everything else must survive).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => any::<i64>().prop_map(Value::Int),
        1 => Just(Value::Null),
        3 => "[a-zA-Z0-9 ,\"'éü_-]{0,12}".prop_map(|s| {
            // The parser classifies digit-only strings as Int and empty as
            // Null; normalize the expectation accordingly by re-parsing.
            Value::parse(&s)
        }),
    ]
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    (1usize..=5, 0usize..=8).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(proptest::collection::vec(arb_value(), n_attrs), n_rows).prop_map(
            move |rows| {
                Relation::from_rows(Schema::synthetic(n_attrs).expect("valid"), rows)
                    .expect("rows are rectangular")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_preserves_values(r in arb_relation()) {
        let mut buf = Vec::new();
        csv::write_csv(&r, &mut buf).expect("write");
        let back = csv::read_csv(buf.as_slice()).expect("read back what we wrote");
        prop_assert_eq!(back.len(), r.len());
        prop_assert_eq!(back.arity(), r.arity());
        for t in 0..r.len() {
            for a in 0..r.arity() {
                prop_assert_eq!(
                    back.value(t, a), r.value(t, a),
                    "cell ({}, {}) changed", t, a
                );
            }
        }
    }

    #[test]
    fn roundtrip_preserves_mining(r in arb_relation()) {
        let mut buf = Vec::new();
        csv::write_csv(&r, &mut buf).expect("write");
        let back = csv::read_csv(buf.as_slice()).expect("read");
        prop_assert_eq!(
            DepMiner::new().mine(&back).fds,
            DepMiner::new().mine(&r).fds
        );
    }

    #[test]
    fn reader_never_panics_on_arbitrary_input(text in "[ -~\n]{0,200}") {
        // Any byte soup either parses or errors; no panic, no UB.
        let _ = csv::read_csv(text.as_bytes());
    }
}
