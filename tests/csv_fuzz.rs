//! Property tests for the CSV layer: arbitrary values (including commas,
//! quotes, unicode, negative integers, NULLs) must round-trip exactly, and
//! mining results must be invariant under the round-trip.

use depminer::prelude::*;
use depminer::relation::{csv, Prng};

const CASES: usize = 128;

/// Characters allowed in random text fields: letters, digits, separators,
/// quotes and some unicode — the writer does not support embedded
/// newlines; everything else must survive.
const FIELD_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Q', 'Z', '0', '5', '9', ' ', ',', '"', '\'', 'é', 'ü', '_', '-',
];

fn random_value(rng: &mut Prng) -> Value {
    match rng.gen_range(0..6u32) {
        0 | 1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Null,
        _ => {
            let len = rng.gen_range(0..=12usize);
            let s: String = (0..len)
                .map(|_| FIELD_CHARS[rng.gen_range(0..FIELD_CHARS.len())])
                .collect();
            // The parser classifies digit-only strings as Int and empty as
            // Null; normalize the expectation accordingly by re-parsing.
            Value::parse(&s)
        }
    }
}

fn arb_relation(rng: &mut Prng) -> Relation {
    let n_attrs = rng.gen_range(1..=5usize);
    let n_rows = rng.gen_range(0..=8usize);
    let rows: Vec<Vec<Value>> = (0..n_rows)
        .map(|_| (0..n_attrs).map(|_| random_value(rng)).collect())
        .collect();
    Relation::from_rows(Schema::synthetic(n_attrs).expect("valid"), rows)
        .expect("rows are rectangular")
}

#[test]
fn roundtrip_preserves_values() {
    let mut rng = Prng::seed_from_u64(0xC4F1);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let mut buf = Vec::new();
        csv::write_csv(&r, &mut buf).expect("write");
        let back = csv::read_csv(buf.as_slice()).expect("read back what we wrote");
        assert_eq!(back.len(), r.len());
        assert_eq!(back.arity(), r.arity());
        for t in 0..r.len() {
            for a in 0..r.arity() {
                assert_eq!(back.value(t, a), r.value(t, a), "cell ({t}, {a}) changed");
            }
        }
    }
}

#[test]
fn roundtrip_preserves_mining() {
    let mut rng = Prng::seed_from_u64(0xC4F2);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let mut buf = Vec::new();
        csv::write_csv(&r, &mut buf).expect("write");
        let back = csv::read_csv(buf.as_slice()).expect("read");
        assert_eq!(
            DepMiner::new().mine(&back).fds,
            DepMiner::new().mine(&r).fds
        );
    }
}

#[test]
fn reader_never_panics_on_arbitrary_input() {
    // Any byte soup (printable ASCII + newlines) either parses or errors;
    // no panic, no UB.
    let mut rng = Prng::seed_from_u64(0xC4F3);
    for _ in 0..CASES {
        let len = rng.gen_range(0..=200usize);
        let text: String = (0..len)
            .map(|_| {
                if rng.gen_range(0..16u32) == 0 {
                    '\n'
                } else {
                    rng.gen_range(0x20u32..0x7F) as u8 as char
                }
            })
            .collect();
        let _ = csv::read_csv(text.as_bytes());
    }
}
