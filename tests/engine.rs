//! Engine-equivalence suite (DESIGN.md §13): dispatching a miner through
//! the `depminer-engine` `Session` must be observationally identical to
//! calling its own governed entry point directly — byte-identical FD
//! vectors, the same stage sequence, and the same completion status — on
//! random relations, under an unlimited budget, a generous one-second
//! budget, and a zero-timeout budget that trips at the first checkpoint.

use std::time::Duration;

use depminer::engine::{ApproxMiner, Emitted, MinerRegistry, Session, SessionCtx};
use depminer::fdtheory::mine_minimal_fds;
use depminer::govern::{MiningOutcome, Obs, Stage};
use depminer::prelude::*;
use depminer::relation::Prng;
use depminer::tane::approximate_fds_governed;

mod common;
use common::random_relation;

const CASES: usize = 16;

fn stages_of<T>(o: &MiningOutcome<T>) -> Vec<Stage> {
    o.stages.iter().map(|s| s.stage).collect()
}

fn exact_fds(o: &MiningOutcome<Emitted>) -> &[depminer::fdtheory::Fd] {
    o.result.exact_fds().expect("exact miners emit FD lists")
}

/// Runs the registry entry named `cli_name` through a fresh `Session`.
fn session_run(r: &Relation, cli_name: &str, budget: Budget) -> MiningOutcome<Emitted> {
    let reg = MinerRegistry::standard();
    let entry = reg.by_cli_name(cli_name).expect("registered miner");
    let session = Session::new(SessionCtx::new(r, budget, Obs::none(), None));
    session.run(entry.instantiate().as_ref())
}

/// The engine outcome must replicate the direct one bit for bit.
fn assert_equivalent<T>(
    cli_name: &str,
    engine: &MiningOutcome<Emitted>,
    direct: &MiningOutcome<T>,
    direct_fds: &[depminer::fdtheory::Fd],
) {
    assert_eq!(exact_fds(engine), direct_fds, "{cli_name}: FD sets diverge");
    assert_eq!(
        stages_of(engine),
        stages_of(direct),
        "{cli_name}: stage sequences diverge"
    );
    assert_eq!(
        engine.is_complete(),
        direct.is_complete(),
        "{cli_name}: completion status diverges"
    );
}

/// Every registered exact miner, engine vs direct, under one budget.
fn check_exact_miners(r: &Relation, budget: Budget) {
    let direct = DepMiner::algorithm_2(None).mine_governed(r, &budget);
    assert_equivalent(
        "depminer",
        &session_run(r, "depminer", budget),
        &direct,
        &direct.result.fds,
    );

    let direct = DepMiner::algorithm_3().mine_governed(r, &budget);
    assert_equivalent(
        "depminer2",
        &session_run(r, "depminer2", budget),
        &direct,
        &direct.result.fds,
    );

    let direct = Tane::new().run_governed(r, &budget);
    assert_equivalent(
        "tane",
        &session_run(r, "tane", budget),
        &direct,
        &direct.result.fds,
    );

    let direct = Fdep::new().run_governed(r, &budget);
    assert_equivalent(
        "fdep",
        &session_run(r, "fdep", budget),
        &direct,
        &direct.result.fds,
    );
}

#[test]
fn session_matches_direct_entry_points_unlimited() {
    let mut rng = Prng::seed_from_u64(0xE1417E);
    for _ in 0..CASES {
        let r = random_relation(&mut rng, 2..=6, 1..=40, 0..=3);
        check_exact_miners(&r, Budget::unlimited());
    }
}

#[test]
fn session_matches_direct_entry_points_under_one_second_budget() {
    // A generous armed budget: the governors are live on every
    // checkpoint but never trip on these tiny relations, so the engine
    // must replicate the governed (not the ungoverned) code path.
    let mut rng = Prng::seed_from_u64(0xB0D6E7);
    let budget = Budget::unlimited().with_timeout(Duration::from_secs(1));
    for _ in 0..CASES {
        let r = random_relation(&mut rng, 2..=6, 1..=40, 0..=3);
        check_exact_miners(&r, budget);
    }
}

#[test]
fn session_matches_direct_entry_points_when_budget_trips() {
    // Zero timeout trips at the first checkpoint; the engine must report
    // the identical partial outcome (FDs, stages, interrupted flag).
    let mut rng = Prng::seed_from_u64(0x7417ED);
    let budget = Budget::unlimited().with_timeout(Duration::ZERO);
    for _ in 0..4 {
        let r = random_relation(&mut rng, 3..=6, 5..=40, 0..=3);
        check_exact_miners(&r, budget);
        let engine = session_run(&r, "depminer", budget);
        assert!(!engine.is_complete(), "zero timeout must trip");
    }
}

#[test]
fn session_matches_direct_approximate_miner() {
    let mut rng = Prng::seed_from_u64(0xA99403);
    for _ in 0..CASES {
        let r = random_relation(&mut rng, 2..=5, 1..=30, 0..=2);
        for epsilon in [0.0, 0.05, 0.2] {
            let budget = Budget::unlimited();
            let session = Session::new(SessionCtx::new(&r, budget, Obs::none(), None));
            let engine = session.run(&ApproxMiner { epsilon });
            let token = budget.start();
            let direct = approximate_fds_governed(&r, epsilon, &token);
            match &engine.result {
                Emitted::ApproxFds { fds, epsilon: eps } => {
                    assert_eq!(fds, &direct.result, "eps={epsilon}: FD sets diverge");
                    assert_eq!(*eps, epsilon);
                }
                Emitted::Fds(_) => panic!("approx miner must emit approximate FDs"),
            }
            assert_eq!(
                stages_of(&engine),
                stages_of(&direct),
                "eps={epsilon}: stage sequences diverge"
            );
            assert_eq!(engine.is_complete(), direct.is_complete());
        }
    }
}

#[test]
fn session_matches_naive_oracle() {
    let mut rng = Prng::seed_from_u64(0x0AC1E5);
    for _ in 0..CASES {
        let r = random_relation(&mut rng, 2..=5, 1..=25, 0..=2);
        let engine = session_run(&r, "naive", Budget::unlimited());
        assert!(engine.is_complete());
        assert_eq!(exact_fds(&engine), mine_minimal_fds(&r));
        assert!(stages_of(&engine).is_empty(), "oracle reports no stages");
    }
}
