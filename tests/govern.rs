//! Budget-governance regression tests (run under both `DEPMINER_THREADS=1`
//! and `=4` by `ci.sh`): an adversarial generated relation must terminate
//! promptly under a 1-second wall-clock budget with a valid — possibly
//! partial — result, and exhausted budgets must leave the runtime
//! immediately reusable.

use depminer::depminer::DepMiner;
use depminer::govern::{Budget, Resource};
use depminer::relation::SyntheticConfig;
use depminer::tane::Tane;
use std::time::{Duration, Instant};

/// High-attribute, low-correlation workload: wide lattice, many distinct
/// values — the shape that blows up levelwise walks rather than the
/// agree-set scan.
fn adversarial() -> depminer::relation::Relation {
    SyntheticConfig {
        n_attrs: 20,
        n_rows: 600,
        correlation: 0.15,
        seed: 0xBAD_5EED,
    }
    .generate()
    .expect("valid synthetic config")
}

#[test]
fn adversarial_relation_terminates_within_a_one_second_budget() {
    let r = adversarial();
    let budget = Budget::unlimited().with_timeout(Duration::from_secs(1));

    let start = Instant::now();
    let outcome = DepMiner::new().mine_governed(&r, &budget);
    let elapsed = start.elapsed();
    // Checkpoints are cooperative, so allow slack past the deadline for
    // the stage in flight to drain — but nothing near a hang.
    assert!(
        elapsed < Duration::from_secs(20),
        "governed run took {elapsed:?}"
    );
    // Complete or partial, the claimed FDs must be exact.
    outcome
        .result
        .audit_claimed_fds(&r)
        .expect("claimed FDs must hold and be minimal");
    if let Some(why) = &outcome.interrupted {
        assert_eq!(why.resource, Resource::Deadline);
        assert!(outcome.stages.iter().any(|s| !s.completed));
    }

    let start = Instant::now();
    let tane = Tane::new().run_governed(&r, &budget);
    let elapsed = start.elapsed();
    assert!(elapsed < Duration::from_secs(20), "TANE took {elapsed:?}");
    if !tane.is_complete() {
        // Whatever was emitted is an exact prefix of the cover: every FD
        // has lhs within the completed levels.
        let done = tane.stages[0].processed as usize;
        assert!(tane.result.fds.iter().all(|fd| fd.lhs.len() <= done));
    }
}

#[test]
fn certain_deadline_trip_returns_valid_partial_and_reusable_runtime() {
    let r = adversarial();
    // A deadline in the past must trip at the very first checkpoint.
    let budget = Budget::unlimited().with_timeout(Duration::from_nanos(1));
    let outcome = DepMiner::new().mine_governed(&r, &budget);
    let why = outcome.interrupted.as_ref().expect("1ns budget must trip");
    assert_eq!(why.resource, Resource::Deadline);
    outcome
        .result
        .audit_claimed_fds(&r)
        .expect("partial audits clean");
    assert!(!outcome.diagnostics().is_empty());

    // The trip is confined to that token: an ungoverned run right after
    // is complete and self-consistent (pool not poisoned, no residue).
    let small = SyntheticConfig {
        n_attrs: 6,
        n_rows: 200,
        correlation: 0.5,
        seed: 1,
    }
    .generate()
    .expect("valid config");
    let clean = DepMiner::new().mine(&small);
    clean.audit(&small).expect("clean rerun audits fully");
}

#[test]
fn candidate_budget_bounds_tane_on_a_wide_relation() {
    // Small enough that the ungoverned reference cover is cheap, wide
    // enough that 20 candidates is a genuine mid-walk cut (level 1 alone
    // has 12).
    let r = SyntheticConfig {
        n_attrs: 12,
        n_rows: 300,
        correlation: 0.3,
        seed: 0xBAD_5EED,
    }
    .generate()
    .expect("valid config");
    let budget = Budget::unlimited().with_max_candidates(20);
    let outcome = Tane::new().run_governed(&r, &budget);
    let why = outcome
        .interrupted
        .as_ref()
        .expect("20 candidates must trip");
    assert_eq!(why.resource, Resource::Candidates);
    // Emitted FDs are exact for the completed levels.
    let full = Tane::new().run(&r).fds;
    for fd in &outcome.result.fds {
        assert!(full.contains(fd), "invented {fd}");
    }
}
