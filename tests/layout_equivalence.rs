//! Flat-vs-nested layout equivalence: the CSR [`FlatPartition`] and the
//! arena-driven product must be observationally identical to the nested
//! `Vec<Vec<u32>>` [`StrippedPartition`] substrate they replaced, all the
//! way from single-partition construction up to whole-pipeline FD output.
//!
//! The determinism invariant under test everywhere: every flat
//! construction and product path produces classes in ascending order of
//! first tuple, so a flat partition equals `FlatPartition::from_nested`
//! of its nested counterpart *byte for byte* — not merely up to class
//! reordering.
//!
//! The `faulted` module (compiled under `--features faults`) sweeps
//! injected cancellations through the governed TANE walk and checks that
//! level-scoped arena reclamation never corrupts either the partial FD
//! list or the shared partition database other runs keep borrowing.

use depminer::fdtheory::mine_minimal_fds;
use depminer::prelude::*;
use depminer::relation::{FlatPartition, PartitionArena, Prng, ProductScratch, StrippedPartition};

mod common;
use common::{random_relation, random_set};

const CASES: usize = 48;

fn arb_relation(rng: &mut Prng) -> Relation {
    random_relation(rng, 2..=6, 0..=24, 1..=4)
}

#[test]
fn flat_construction_matches_nested_byte_for_byte() {
    let mut rng = Prng::seed_from_u64(0xF1A7_0001);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let n = r.arity();
        for a in 0..n {
            let nested = StrippedPartition::for_attribute(&r, a);
            let flat = FlatPartition::for_attribute(&r, a);
            assert_eq!(flat, FlatPartition::from_nested(&nested));
            assert_eq!(flat.to_nested(), nested, "roundtrip for attribute {a}");
        }
        let x = random_set(&mut rng, 6).intersection(AttrSet::full(n));
        let nested = StrippedPartition::for_set(&r, x);
        let flat = FlatPartition::for_set(&r, x);
        assert_eq!(flat, FlatPartition::from_nested(&nested), "set {x}");
    }
}

#[test]
fn flat_product_matches_nested_product() {
    let mut rng = Prng::seed_from_u64(0xF1A7_0002);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let n = r.arity();
        let mut arena = PartitionArena::new(r.len());
        let mut scratch = ProductScratch::new(r.len());
        for x in 0..n {
            for y in 0..n {
                let nx = StrippedPartition::for_attribute(&r, x);
                let ny = StrippedPartition::for_attribute(&r, y);
                let fx = FlatPartition::for_attribute(&r, x);
                let fy = FlatPartition::for_attribute(&r, y);
                let nested_prod = nx.product_with(&ny, &mut scratch);
                let flat_prod = fx.product_with(&fy, &mut arena);
                assert_eq!(
                    flat_prod,
                    FlatPartition::from_nested(&nested_prod),
                    "product {x}·{y}"
                );
                // Recycling the product back into the arena (the hot-path
                // lifecycle) must not perturb later products.
                arena.recycle(flat_prod);
            }
        }
    }
}

#[test]
fn flat_statistics_match_nested() {
    let mut rng = Prng::seed_from_u64(0xF1A7_0003);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let n = r.arity();
        let x = random_set(&mut rng, 6).intersection(AttrSet::full(n));
        let nested = StrippedPartition::for_set(&r, x);
        let flat = FlatPartition::for_set(&r, x);
        assert_eq!(flat.num_classes(), nested.num_classes(), "set {x}");
        assert_eq!(flat.total_tuples(), nested.total_tuples(), "set {x}");
        assert_eq!(
            flat.full_num_classes(),
            nested.full_num_classes(),
            "set {x}"
        );
        assert_eq!(flat.is_superkey(), nested.is_superkey(), "set {x}");
        assert_eq!(flat.error().to_bits(), nested.error().to_bits(), "set {x}");
    }
}

/// Oracle for `MC`: collect every class of every per-attribute *nested*
/// partition, deduplicate, and keep the maximal ones under set inclusion
/// by brute force.
fn naive_maximal_classes(r: &Relation) -> Vec<Vec<u32>> {
    let mut classes: Vec<Vec<u32>> = Vec::new();
    for a in 0..r.arity() {
        for c in StrippedPartition::for_attribute(r, a).classes() {
            let mut c = c.clone();
            c.sort_unstable();
            if !classes.contains(&c) {
                classes.push(c);
            }
        }
    }
    let maximal: Vec<Vec<u32>> = classes
        .iter()
        .filter(|c| {
            !classes
                .iter()
                .any(|d| d.len() > c.len() && c.iter().all(|t| d.contains(t)))
        })
        .cloned()
        .collect();
    maximal
}

#[test]
fn db_maximal_classes_match_naive_nested_oracle() {
    let mut rng = Prng::seed_from_u64(0xF1A7_0004);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let db = StrippedPartitionDb::from_relation(&r);
        let mut got: Vec<Vec<u32>> = db.maximal_classes();
        for c in &mut got {
            c.sort_unstable();
        }
        got.sort();
        let mut want = naive_maximal_classes(&r);
        want.sort();
        assert_eq!(got, want);
    }
}

#[test]
fn full_pipeline_fd_output_is_layout_independent() {
    let mut rng = Prng::seed_from_u64(0xF1A7_0005);
    for _ in 0..24 {
        let r = random_relation(&mut rng, 2..=5, 0..=20, 1..=3);
        let naive = mine_minimal_fds(&r);
        let tane = Tane::new().run(&r).fds;
        assert_eq!(tane, naive, "TANE on the flat layout diverges from naive");
        let depminer = DepMiner::new().mine(&r).fds;
        assert_eq!(depminer, naive, "Dep-Miner on the flat db diverges");
        // Re-mining from one shared flat db is deterministic.
        let db = StrippedPartitionDb::from_relation(&r);
        let t = Tane::new();
        assert_eq!(t.run_db(&db).fds, t.run_db(&db).fds);
    }
}

/// Injected-fault sweeps: arena reclamation on the error path must leave
/// both the partial result and the shared database intact.
#[cfg(feature = "faults")]
mod faulted {
    use depminer::govern::faults::{FaultKind, FaultPlan};
    use depminer::prelude::*;
    use depminer::relation::Prng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn cancelled_runs_corrupt_neither_partials_nor_the_shared_db() {
        let r = SyntheticConfig {
            n_attrs: 8,
            n_rows: 80,
            correlation: 0.6,
            seed: 0xF1A7_5001,
        }
        .generate()
        .expect("valid synthetic config");
        let db = StrippedPartitionDb::from_relation(&r);
        let tane = Tane::new();
        let baseline = tane.run_db(&db).fds;
        let mut rng = Prng::seed_from_u64(0xF1A7_5002);
        for kind in [FaultKind::Cancel, FaultKind::MemoryExhaust] {
            for _ in 0..10 {
                let at = rng.gen_range(0u64..600);
                let token = Budget::unlimited().start_with_fault(FaultPlan::new(kind, at));
                let outcome = tane.run_db_governed(&db, &token);
                if outcome.is_complete() {
                    assert_eq!(outcome.result.fds, baseline, "{kind:?} ordinal {at}");
                } else {
                    // A partial run may only drop FDs, never invent them —
                    // reclaiming the level cache must not scramble what was
                    // already emitted.
                    for fd in &outcome.result.fds {
                        assert!(
                            baseline.contains(fd),
                            "{kind:?} ordinal {at}: invented {fd}"
                        );
                    }
                }
                // The database every run borrows from stays pristine.
                assert_eq!(tane.run_db(&db).fds, baseline, "{kind:?} rerun after {at}");
            }
        }
        // Panics mid-walk unwind through the arena without poisoning
        // anything process-wide.
        for _ in 0..6 {
            let at = rng.gen_range(0u64..600);
            let token = Budget::unlimited().start_with_fault(FaultPlan::new(FaultKind::Panic, at));
            let _ = catch_unwind(AssertUnwindSafe(|| tane.run_db_governed(&db, &token)));
            assert_eq!(tane.run_db(&db).fds, baseline, "rerun after panic at {at}");
        }
    }
}
