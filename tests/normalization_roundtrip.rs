//! End-to-end normalization verification on real data: mine FDs, decompose
//! the schema, *materialize* the fragments by projection, and prove the
//! decomposition lossless by natural-joining everything back together.
//!
//! This closes the loop of the paper's "logical tuning" motivation: the FDs
//! Dep-Miner discovers are exactly what makes the decomposition safe.

use depminer::fdtheory::{bcnf_decompose, canonical_cover, is_bcnf, synthesize_3nf};
use depminer::prelude::*;
use depminer::relation::{datasets, natural_join, project, same_instance, Prng, Relation};

mod common;
use common::random_relation;

/// Joins materialized fragments back together and compares with `r`.
fn verify_lossless(r: &Relation, fragments: &[AttrSet]) {
    assert!(!fragments.is_empty());
    let mut frags = fragments.iter();
    let mut acc = project(r, *frags.next().expect("non-empty")).expect("projectable");
    for &f in frags {
        let piece = project(r, f).expect("projectable");
        acc = natural_join(&acc, &piece).expect("joinable");
    }
    assert!(
        same_instance(&acc, r),
        "decomposition into {fragments:?} is lossy: joined {} tuples, original {}",
        acc.len(),
        r.len()
    );
}

#[test]
fn bcnf_decomposition_is_lossless_on_datasets() {
    for r in [
        datasets::employee(),
        datasets::enrollment(),
        datasets::payroll(),
        datasets::flights(),
    ] {
        let fds = DepMiner::new().mine(&r).fds;
        let cover = canonical_cover(&fds);
        let frags: Vec<AttrSet> = bcnf_decompose(r.arity(), &cover)
            .into_iter()
            .map(|d| d.attrs)
            .collect();
        for &f in &frags {
            assert!(is_bcnf(f, &cover));
        }
        verify_lossless(&r, &frags);
    }
}

#[test]
fn three_nf_synthesis_is_lossless_on_datasets() {
    for r in [
        datasets::employee(),
        datasets::enrollment(),
        datasets::payroll(),
        datasets::flights(),
    ] {
        let fds = DepMiner::new().mine(&r).fds;
        let frags: Vec<AttrSet> = synthesize_3nf(r.arity(), &fds)
            .into_iter()
            .map(|d| d.attrs)
            .collect();
        verify_lossless(&r, &frags);
    }
}

#[test]
fn payroll_decomposes_along_the_transitive_chain() {
    // emp → dept → manager → floor: BCNF splits the chain apart.
    let r = datasets::payroll();
    let fds = DepMiner::new().mine(&r).fds;
    let cover = canonical_cover(&fds);
    let frags = bcnf_decompose(r.arity(), &cover);
    assert!(
        frags.len() >= 2,
        "payroll should not be in BCNF as a single table"
    );
    verify_lossless(&r, &frags.iter().map(|d| d.attrs).collect::<Vec<_>>());
}

#[test]
fn decompositions_are_lossless_on_random_relations() {
    let mut rng = Prng::seed_from_u64(0x3FF1);
    for _ in 0..32 {
        let r = random_relation(&mut rng, 2..=5, 2..=10, 1..=3);
        let fds = DepMiner::new().mine(&r).fds;
        let cover = canonical_cover(&fds);
        let bcnf: Vec<AttrSet> = bcnf_decompose(r.arity(), &cover)
            .into_iter()
            .map(|d| d.attrs)
            .collect();
        let mut frags = bcnf.iter();
        let mut acc = project(&r, *frags.next().expect("non-empty")).expect("projectable");
        for &f in frags {
            acc = natural_join(&acc, &project(&r, f).expect("projectable")).expect("joinable");
        }
        assert!(same_instance(&acc, &r), "BCNF decomposition lossy");

        let tnf: Vec<AttrSet> = synthesize_3nf(r.arity(), &fds)
            .into_iter()
            .map(|d| d.attrs)
            .collect();
        let mut frags = tnf.iter();
        let mut acc = project(&r, *frags.next().expect("non-empty")).expect("projectable");
        for &f in frags {
            acc = natural_join(&acc, &project(&r, f).expect("projectable")).expect("joinable");
        }
        assert!(same_instance(&acc, &r), "3NF synthesis lossy");
    }
}
