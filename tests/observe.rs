//! Property tests for the observability layer: every governed mining
//! run must leave a *well-formed* record behind, whatever route it
//! took to finish.
//!
//! Three families of properties:
//!
//! * profile trees (the `--profile` sink) are balanced, their child
//!   durations fit inside their parents, and the exported JSON passes
//!   the same `validate_profile_json` gate that `xtask
//!   validate-profile` and ci.sh apply to real CLI output;
//! * JSONL traces (the `--trace` sink) are per-thread balanced with
//!   monotone timestamps, including under worker-pool parallelism;
//! * the counters a run accumulates agree with the `StageReport`s the
//!   governance layer publishes for the same run.
//!
//! With `--features faults` the same invariants are asserted while
//! deterministic faults (cancellation, mid-stage panics) fire at swept
//! checkpoint ordinals: an interrupted or unwinding run may truncate
//! the tree, but it must never leave it unbalanced or inconsistent.

use std::sync::Arc;

use depminer::depminer::{AgreeSetStrategy, DepMiner, TransversalEngine};
use depminer::fdep::Fdep;
use depminer::govern::observe::jsonl::{validate_events, JsonlSink};
use depminer::govern::observe::profile::{validate_profile_json, Profile, ProfileSink};
use depminer::govern::observe::Obs;
use depminer::govern::{Budget, Stage};
use depminer::parallel::Parallelism;
use depminer::relation::{Relation, SyntheticConfig};
use depminer::tane::Tane;

/// Small but structurally rich workloads: several correlation regimes
/// so agree sets, lattice levels and transversals all do real work.
fn workloads() -> Vec<Relation> {
    [(8usize, 60usize, 0.3f64), (7, 90, 0.6), (6, 50, 0.9)]
        .iter()
        .map(|&(n_attrs, n_rows, correlation)| {
            SyntheticConfig {
                n_attrs,
                n_rows,
                correlation,
                seed: 0x0B5E_2007,
            }
            .generate()
            .expect("valid synthetic config")
        })
        .collect()
}

/// The structurally distinct miner configurations (all three agree-set
/// strategies, all three transversal engines appear at least once).
fn miners() -> Vec<DepMiner> {
    vec![
        DepMiner::algorithm_2(None),
        DepMiner::algorithm_3(),
        DepMiner {
            strategy: AgreeSetStrategy::Naive,
            ..DepMiner::new()
        }
        .with_engine(TransversalEngine::Berge),
        DepMiner::new().with_engine(TransversalEngine::Dfs),
    ]
}

/// Runs `f` under a fresh profile-observed unlimited token and returns
/// the snapshot.
fn profiled<T>(f: impl FnOnce(&depminer::govern::CancelToken) -> T) -> (T, Profile) {
    let sink = Arc::new(ProfileSink::new());
    let token = Budget::unlimited().start_observed(Obs::new(sink.clone()));
    let out = f(&token);
    drop(token);
    (out, sink.snapshot())
}

/// Snapshot must be balanced and its JSON export must pass the shared
/// validator with `required` spans present.
fn assert_well_formed(profile: &Profile, required: &[&str], ctx: &str) {
    assert!(profile.balanced, "{ctx}: profile left unbalanced");
    validate_profile_json(&profile.to_json(), required)
        .unwrap_or_else(|e| panic!("{ctx}: exported profile invalid: {e}"));
}

#[test]
fn depminer_profiles_are_well_formed_for_every_strategy_and_engine() {
    for r in workloads() {
        for (i, miner) in miners().into_iter().enumerate() {
            let (outcome, profile) = profiled(|t| miner.mine_with_token(&r, t));
            assert!(outcome.is_complete());
            assert_well_formed(
                &profile,
                &["depminer", "agree-sets", "max-sets", "transversals"],
                &format!("miner {i} on |R|={}", r.arity()),
            );
        }
    }
}

#[test]
fn tane_and_fdep_profiles_are_well_formed() {
    for r in workloads() {
        let (outcome, profile) = profiled(|t| Tane::new().run_with_token(&r, t));
        assert!(outcome.is_complete());
        assert_well_formed(&profile, &["tane", "tane-levels"], "tane");

        let (outcome, profile) = profiled(|t| Fdep::new().run_with_token(&r, t));
        assert!(outcome.is_complete());
        assert_well_formed(
            &profile,
            &["fdep", "negative-cover", "fdep-inversion"],
            "fdep",
        );
    }
}

#[test]
fn parallel_runs_keep_profiles_balanced() {
    for r in workloads() {
        let miner = DepMiner::new().with_parallelism(Parallelism::Threads(4));
        let (outcome, profile) = profiled(|t| miner.mine_with_token(&r, t));
        assert!(outcome.is_complete());
        assert_well_formed(
            &profile,
            &["depminer", "agree-sets", "max-sets", "transversals"],
            "parallel dep-miner",
        );
    }
}

#[test]
fn counters_agree_with_stage_reports() {
    for r in workloads() {
        for miner in miners() {
            let (outcome, profile) = profiled(|t| miner.mine_with_token(&r, t));
            let agree = outcome
                .stages
                .iter()
                .find(|s| s.stage == Stage::AgreeSets)
                .expect("agree-sets stage reported");
            assert_eq!(
                profile.counter("couples_scanned"),
                agree.processed,
                "couples counter must match the agree-sets stage report"
            );
            assert_eq!(
                profile.counter("fd_emissions"),
                outcome.result.fds.len() as u64,
                "fd_emissions must match the emitted FD count"
            );
            assert_eq!(
                profile.counter("maxset_filter_passes"),
                r.arity() as u64,
                "one max-set filter pass per attribute"
            );
        }
        let (outcome, profile) = profiled(|t| Tane::new().run_with_token(&r, t));
        assert_eq!(
            profile.counter("fd_emissions"),
            outcome.result.fds.len() as u64
        );
        assert!(profile.counter("apriori_candidates") > 0);
        let (outcome, profile) = profiled(|t| Fdep::new().run_with_token(&r, t));
        assert_eq!(
            profile.counter("fd_emissions"),
            outcome.result.fds.len() as u64
        );
    }
}

/// Runs `f` against a JSONL sink and returns the captured trace text.
fn traced(f: impl FnOnce(&depminer::govern::CancelToken)) -> String {
    let sink = Arc::new(JsonlSink::new(Vec::new()));
    let token = Budget::unlimited().start_observed(Obs::new(sink.clone()));
    f(&token);
    drop(token);
    let sink = Arc::try_unwrap(sink).ok().expect("all handles dropped");
    String::from_utf8(sink.into_inner()).expect("trace is utf-8")
}

#[test]
fn jsonl_traces_are_balanced_and_monotone() {
    for r in workloads() {
        let text = traced(|t| {
            DepMiner::new().mine_with_token(&r, t);
            Tane::new().run_with_token(&r, t);
            Fdep::new().run_with_token(&r, t);
        });
        let events =
            validate_events(&text).unwrap_or_else(|e| panic!("sequential trace invalid: {e}"));
        assert!(!events.is_empty());
    }
}

#[test]
fn jsonl_traces_survive_worker_pool_parallelism() {
    for r in workloads() {
        let miner = DepMiner::new().with_parallelism(Parallelism::Threads(4));
        let text = traced(|t| {
            miner.mine_with_token(&r, t);
        });
        validate_events(&text).unwrap_or_else(|e| panic!("parallel trace invalid: {e}"));
    }
}

#[cfg(feature = "faults")]
mod chaos {
    use super::*;
    use depminer::govern::faults::{FaultKind, FaultPlan};
    use depminer::relation::Prng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Ordinal range for the sweeps; wide enough to sometimes land past
    /// the last checkpoint (those runs complete — also part of the
    /// property).
    const ORDINAL_RANGE: std::ops::Range<u64> = 0..400;

    #[test]
    fn profiles_stay_well_formed_under_injected_cancellation() {
        let r = workloads().remove(1);
        let mut rng = Prng::seed_from_u64(0x0B5E_FA01);
        for miner in miners() {
            for _ in 0..8 {
                let at = rng.gen_range(ORDINAL_RANGE);
                let sink = Arc::new(ProfileSink::new());
                let token = Budget::unlimited().start_observed_with_fault(
                    Obs::new(sink.clone()),
                    FaultPlan::new(FaultKind::Cancel, at),
                );
                let outcome = miner.mine_with_token(&r, &token);
                drop(token);
                let profile = sink.snapshot();
                assert_well_formed(&profile, &[], &format!("cancel at ordinal {at}"));
                // A cut-off run may truncate the tree but the counters
                // it did record must still match what it reports.
                if let Some(agree) = outcome.stages.iter().find(|s| s.stage == Stage::AgreeSets) {
                    assert_eq!(profile.counter("couples_scanned"), agree.processed);
                }
            }
        }
    }

    #[test]
    fn profiles_stay_balanced_when_a_stage_panics_mid_flight() {
        let r = workloads().remove(0);
        let mut rng = Prng::seed_from_u64(0x0B5E_FA02);
        for miner in miners() {
            for _ in 0..6 {
                let at = rng.gen_range(ORDINAL_RANGE);
                let sink = Arc::new(ProfileSink::new());
                let token = Budget::unlimited().start_observed_with_fault(
                    Obs::new(sink.clone()),
                    FaultPlan::new(FaultKind::Panic, at),
                );
                let _ = catch_unwind(AssertUnwindSafe(|| miner.mine_with_token(&r, &token)));
                drop(token);
                // Unwinding drops every SpanGuard, so even a crashed
                // run must leave a balanced, exportable tree.
                assert_well_formed(&sink.snapshot(), &[], &format!("panic at ordinal {at}"));
            }
        }
    }

    #[test]
    fn jsonl_traces_stay_valid_under_injected_cancellation() {
        let r = workloads().remove(2);
        let mut rng = Prng::seed_from_u64(0x0B5E_FA03);
        for _ in 0..8 {
            let at = rng.gen_range(ORDINAL_RANGE);
            let sink = Arc::new(JsonlSink::new(Vec::new()));
            let token = Budget::unlimited().start_observed_with_fault(
                Obs::new(sink.clone()),
                FaultPlan::new(FaultKind::Cancel, at),
            );
            DepMiner::new().mine_with_token(&r, &token);
            Tane::new().run_with_token(&r, &token);
            drop(token);
            let sink = Arc::try_unwrap(sink).ok().expect("all handles dropped");
            let text = String::from_utf8(sink.into_inner()).expect("trace is utf-8");
            validate_events(&text)
                .unwrap_or_else(|e| panic!("trace invalid after cancel at {at}: {e}"));
        }
    }
}
