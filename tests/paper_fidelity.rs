//! Paper-conformance suite: every numbered example, lemma and proposition
//! of the paper, transcribed as executable assertions against the library.
//! Tuple ids are 0-based (the paper numbers tuples from 1); attributes
//! A..E = 0..4.

use depminer::depminer::{
    agree_sets_couples, agree_sets_ec, agree_sets_naive, cmax_sets, fd_output, left_hand_sides,
    real_world_exists, synthetic_armstrong, DepMiner, TransversalEngine,
};
use depminer::prelude::*;
use depminer::relation::{datasets, Partition, StrippedPartition, StrippedPartitionDb};

fn s(v: &[usize]) -> AttrSet {
    AttrSet::from_indices(v.iter().copied())
}

fn norm(mut classes: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    for c in &mut classes {
        c.sort_unstable();
    }
    classes.sort();
    classes
}

/// Example 1: the employee relation and its per-attribute partitions.
#[test]
fn example_1_partitions() {
    let r = datasets::employee();
    assert_eq!(r.len(), 7);
    assert_eq!(r.arity(), 5);
    // π_A = {{1,2},{3},{4},{5},{6},{7}} (paper ids) ⇒ 6 classes.
    assert_eq!(Partition::for_attribute(&r, 0).num_classes(), 6);
    assert_eq!(
        norm(Partition::for_attribute(&r, 1).classes),
        vec![vec![0, 5], vec![1, 6], vec![2, 3], vec![4]]
    );
    assert_eq!(
        norm(Partition::for_attribute(&r, 4).classes),
        vec![vec![0, 5], vec![1, 6], vec![2, 3, 4]]
    );
}

/// Example 2: stripped partitions drop singleton classes.
#[test]
fn example_2_stripped_partitions() {
    let r = datasets::employee();
    let strip = |a: usize| norm(StrippedPartition::for_attribute(&r, a).classes().to_vec());
    assert_eq!(strip(0), vec![vec![0, 1]]);
    assert_eq!(strip(1), vec![vec![0, 5], vec![1, 6], vec![2, 3]]);
    assert_eq!(strip(2), vec![vec![3, 4]]);
    assert_eq!(strip(3), vec![vec![0, 5], vec![1, 6], vec![2, 3]]);
    assert_eq!(strip(4), vec![vec![0, 5], vec![1, 6], vec![2, 3, 4]]);
}

/// Example 3: the stripped partition database collects all of them.
#[test]
fn example_3_spdb() {
    let r = datasets::employee();
    let db = StrippedPartitionDb::from_relation(&r);
    assert_eq!(db.arity(), 5);
    assert_eq!(db.n_rows(), 7);
    assert_eq!(db.partitions().len(), 5);
}

/// Example 4: maximal equivalence classes MC.
#[test]
fn example_4_maximal_classes() {
    let r = datasets::employee();
    let db = StrippedPartitionDb::from_relation(&r);
    assert_eq!(
        norm(db.maximal_classes()),
        vec![vec![0, 1], vec![0, 5], vec![1, 6], vec![2, 3, 4]]
    );
}

/// Example 5 (Algorithm 2) and Lemma 1: agree sets from couples drawn only
/// from maximal classes equal the all-pairs agree sets.
#[test]
fn example_5_and_lemma_1() {
    let r = datasets::employee();
    let db = StrippedPartitionDb::from_relation(&r);
    let expected = vec![s(&[0]), s(&[4]), s(&[2, 4]), s(&[1, 3, 4])];
    let mut expected_sorted = expected.clone();
    expected_sorted.sort();
    assert_eq!(agree_sets_couples(&db, None).sets, expected_sorted);
    // Lemma 1: identical to the naive all-pairs computation.
    assert_eq!(
        agree_sets_couples(&db, None).sets,
        agree_sets_naive(&r).sets
    );
}

/// Examples 6–8 (Algorithm 3) and Lemma 2: identifier-set intersection.
#[test]
fn examples_6_to_8_and_lemma_2() {
    let r = datasets::employee();
    let db = StrippedPartitionDb::from_relation(&r);
    let ec = db.equivalence_class_ids();
    // Example 6: ec(paper tuple 2) = {(A,0),(B,1),(D,1),(E,1)}.
    assert_eq!(ec[1], vec![(0, 0), (1, 1), (3, 1), (4, 1)]);
    // Example 7: ec(1) ∩ ec(2) = {(A,0)} ⇒ ag = {A}.
    assert_eq!(r.agree_set(0, 1), s(&[0]));
    // Example 8: the full agree-set family via Algorithm 3.
    assert_eq!(agree_sets_ec(&db).sets, agree_sets_naive(&r).sets);
}

/// Example 9 and Lemma 3: maximal sets and their complements.
#[test]
fn example_9_and_lemma_3() {
    let r = datasets::employee();
    let ms = cmax_sets(&agree_sets_naive(&r));
    assert_eq!(ms.max[0], vec![s(&[2, 4]), s(&[1, 3, 4])]); // {CE, BDE}
    assert_eq!(ms.max[1], vec![s(&[0]), s(&[2, 4])]); // {A, CE}
    assert_eq!(ms.max[2], vec![s(&[0]), s(&[1, 3, 4])]); // {A, BDE}
    assert_eq!(ms.max[3], vec![s(&[0]), s(&[2, 4])]); // {A, CE}
    assert_eq!(ms.max[4], vec![s(&[0])]); // {A}
    assert_eq!(ms.cmax[4], vec![s(&[1, 2, 3, 4])]); // {BCDE}
}

/// Example 10 (Algorithm 5): left-hand sides as minimal transversals.
#[test]
fn example_10_left_hand_sides() {
    let r = datasets::employee();
    let ms = cmax_sets(&agree_sets_naive(&r));
    let lhs = left_hand_sides(&ms, TransversalEngine::Levelwise);
    let sorted = |mut v: Vec<AttrSet>| {
        v.sort();
        v
    };
    assert_eq!(lhs[0], sorted(vec![s(&[0]), s(&[1, 2]), s(&[2, 3])])); // {A, BC, CD}
    assert_eq!(
        lhs[1],
        sorted(vec![s(&[0, 2]), s(&[0, 4]), s(&[1]), s(&[3])])
    );
    assert_eq!(
        lhs[2],
        sorted(vec![s(&[0, 1]), s(&[0, 3]), s(&[0, 4]), s(&[2])])
    );
    assert_eq!(
        lhs[3],
        sorted(vec![s(&[0, 2]), s(&[0, 4]), s(&[1]), s(&[3])])
    );
    assert_eq!(lhs[4], sorted(vec![s(&[1]), s(&[2]), s(&[3]), s(&[4])]));
}

/// Example 11 (Algorithm 6): the 14 minimal non-trivial FDs.
#[test]
fn example_11_minimal_fds() {
    let r = datasets::employee();
    let ms = cmax_sets(&agree_sets_naive(&r));
    let fds = fd_output(&left_hand_sides(&ms, TransversalEngine::Levelwise));
    assert_eq!(fds.len(), 14);
    let has = |lhs: &[usize], rhs: usize| fds.contains(&Fd::new(s(lhs), rhs));
    // All 14 of Example 11 (0-based A..E = 0..4):
    assert!(has(&[1, 2], 0)); // BC → A
    assert!(has(&[2, 3], 0)); // CD → A
    assert!(has(&[0, 2], 1)); // AC → B
    assert!(has(&[0, 4], 1)); // AE → B
    assert!(has(&[3], 1)); //    D → B
    assert!(has(&[0, 1], 2)); // AB → C
    assert!(has(&[0, 3], 2)); // AD → C
    assert!(has(&[0, 4], 2)); // AE → C
    assert!(has(&[0, 2], 3)); // AC → D
    assert!(has(&[0, 4], 3)); // AE → D
    assert!(has(&[1], 3)); //    B → D
    assert!(has(&[1], 4)); //    B → E
    assert!(has(&[2], 4)); //    C → E
    assert!(has(&[3], 4)); //    D → E
}

/// Example 12: the classic integer Armstrong relation from
/// MAX(dep(r)) ∪ {R} = {ABCDE, A, BDE, CE} — 4 tuples.
#[test]
fn example_12_synthetic_armstrong() {
    let r = datasets::employee();
    let result = DepMiner::new().mine(&r);
    assert_eq!(result.max_union(), vec![s(&[0]), s(&[2, 4]), s(&[1, 3, 4])]);
    let arm = synthetic_armstrong(r.schema(), &result.max_union());
    assert_eq!(arm.len(), 4);
    // t0 agrees with ti exactly on Xi.
    for (i, &x) in result.max_union().iter().enumerate() {
        assert_eq!(arm.agree_set(0, i + 1), x);
    }
    assert!(depminer::fdtheory::is_armstrong_for(&arm, &result.fds));
}

/// Example 13 and Proposition 1: the real-world Armstrong relation exists
/// because every attribute has enough distinct values.
#[test]
fn example_13_and_proposition_1() {
    let r = datasets::employee();
    let result = DepMiner::new().mine(&r);
    let max = result.max_union();
    // Paper's counts: |π_A|=6≥2, |π_B|=4≥2, |π_C|=6≥2, |π_D|=4≥2, |π_E|=3≥1+1.
    assert_eq!(r.column(0).distinct_count(), 6);
    assert_eq!(r.column(1).distinct_count(), 4);
    assert_eq!(r.column(2).distinct_count(), 6);
    assert_eq!(r.column(3).distinct_count(), 4);
    assert_eq!(r.column(4).distinct_count(), 3);
    assert_eq!(real_world_exists(&r, &max), Ok(()));
    let arm = result.real_world_armstrong(&r).unwrap();
    assert_eq!(arm.len(), 4);
    // Values come from r (Definition 1, condition 3).
    for t in 0..arm.len() {
        for a in 0..arm.arity() {
            assert!(r.column(a).distinct_values().contains(arm.value(t, a)));
        }
    }
    assert!(depminer::fdtheory::is_armstrong_for(&arm, &result.fds));
}

/// §5.1: the nihilpotence property Tr(Tr(H)) = H lets TANE recover
/// cmax(dep(r), A) = Tr(lhs(dep(r), A)) and build Armstrong relations.
#[test]
fn section_5_1_tane_extension() {
    let r = datasets::employee();
    let tane = Tane::new().run(&r);
    let dm = DepMiner::new().mine(&r);
    assert_eq!(tane.max_union(), dm.max_union());
    let arm = tane.real_world_armstrong(&r).unwrap();
    assert_eq!(arm.len(), 4);
}

/// §5.2 / Table 2: the synthetic benchmark generator's parameters.
#[test]
fn section_5_2_benchmark_parameters() {
    // "if c has a value of 50% … and the number of tuples is 1000, each
    // value for this attribute is chosen between 500 possible values".
    let cfg = SyntheticConfig::new(1, 1000, 0.5);
    assert_eq!(cfg.domain_size(), 500);
    let r = SyntheticConfig {
        n_attrs: 10,
        n_rows: 1000,
        correlation: 0.5,
        seed: 1,
    }
    .generate()
    .unwrap();
    assert_eq!(r.arity(), 10);
    assert_eq!(r.len(), 1000);
    for a in 0..10 {
        assert!(r.column(a).distinct_count() <= 500);
    }
}

/// §5.3's headline usefulness claim: Armstrong relations are dramatically
/// smaller than the mined relation on benchmark data.
#[test]
fn section_5_3_armstrong_sizes_are_small() {
    let r = SyntheticConfig {
        n_attrs: 10,
        n_rows: 2_000,
        correlation: 0.5,
        seed: 3,
    }
    .generate()
    .unwrap();
    let result = DepMiner::algorithm_3().mine(&r);
    let arm = result.real_world_armstrong(&r).unwrap();
    assert!(
        arm.len() * 10 < r.len(),
        "Armstrong sample should be ≫ smaller: {} vs {}",
        arm.len(),
        r.len()
    );
}
