//! Sequential/parallel equivalence: every stage of the Dep-Miner pipeline
//! (and TANE) must produce **bit-identical** results at every thread
//! count. The parallel runtime's determinism contract — chunks cut at
//! deterministic boundaries, results collected in input order,
//! order-insensitive merges — is asserted here over a population of seeded
//! random relations, stage by stage, so a violation pinpoints the layer
//! that broke it.

use depminer::depminer::{
    agree_sets_with, cmax_sets_with, fd_output, left_hand_sides_with, AgreeSetStrategy, DepMiner,
    TransversalEngine,
};
use depminer::hypergraph::Hypergraph;
use depminer::parallel::{par_chunks, par_map, Parallelism, ThreadPool};
use depminer::prelude::*;
use depminer::relation::{Prng, StrippedPartitionDb};
use depminer::tane::Tane;

mod common;
use common::random_relation;

const CASES: usize = 50;
const THREAD_COUNTS: [Parallelism; 2] = [Parallelism::Threads(2), Parallelism::Threads(4)];

fn arb_relation(rng: &mut Prng) -> Relation {
    random_relation(rng, 2..=7, 0..=30, 1..=4)
}

#[test]
fn pipeline_stages_are_thread_count_invariant() {
    let mut rng = Prng::seed_from_u64(0x9A71);
    let strategies = [
        AgreeSetStrategy::Naive,
        AgreeSetStrategy::Couples { chunk_size: None },
        AgreeSetStrategy::Couples {
            chunk_size: Some(16),
        },
        AgreeSetStrategy::EquivalenceClasses,
    ];
    let engines = [
        TransversalEngine::Levelwise,
        TransversalEngine::Berge,
        TransversalEngine::Dfs,
    ];
    for case in 0..CASES {
        let r = arb_relation(&mut rng);
        // Stage 0: stripped partition extraction.
        let db = StrippedPartitionDb::from_relation_with(&r, Parallelism::Sequential);
        for par in THREAD_COUNTS {
            let db_par = StrippedPartitionDb::from_relation_with(&r, par);
            for a in 0..r.arity() {
                assert_eq!(
                    db_par.partition(a),
                    db.partition(a),
                    "case {case}: partition {a} diverges at {par:?}"
                );
            }
        }
        // Stage 1: agree sets, every strategy.
        for strat in strategies {
            let seq = agree_sets_with(&db, strat, Parallelism::Sequential);
            for par in THREAD_COUNTS {
                assert_eq!(
                    agree_sets_with(&db, strat, par),
                    seq,
                    "case {case}: {strat:?} diverges at {par:?}"
                );
            }
        }
        // Stages 2–3: maximal sets and transversals.
        let ag = agree_sets_with(
            &db,
            AgreeSetStrategy::Couples { chunk_size: None },
            Parallelism::Sequential,
        );
        let ms = cmax_sets_with(&ag, Parallelism::Sequential);
        for par in THREAD_COUNTS {
            assert_eq!(
                cmax_sets_with(&ag, par),
                ms,
                "case {case}: cmax diverges at {par:?}"
            );
        }
        for engine in engines {
            let seq = left_hand_sides_with(&ms, engine, Parallelism::Sequential);
            for par in THREAD_COUNTS {
                assert_eq!(
                    left_hand_sides_with(&ms, engine, par),
                    seq,
                    "case {case}: lhs({engine:?}) diverges at {par:?}"
                );
            }
            assert_eq!(fd_output(&seq), fd_output(&seq), "fd_output is pure");
        }
    }
}

#[test]
fn full_miners_are_thread_count_invariant() {
    let mut rng = Prng::seed_from_u64(0x9A72);
    for case in 0..CASES {
        let r = arb_relation(&mut rng);
        let seq = DepMiner::new()
            .with_parallelism(Parallelism::Sequential)
            .mine(&r);
        let tane_seq = Tane::new()
            .with_parallelism(Parallelism::Sequential)
            .run(&r);
        for par in THREAD_COUNTS {
            let p = DepMiner::new().with_parallelism(par).mine(&r);
            assert_eq!(
                p.fds, seq.fds,
                "case {case}: Dep-Miner FDs diverge at {par:?}"
            );
            assert_eq!(p.max_sets, seq.max_sets, "case {case}: max sets diverge");
            assert_eq!(p.lhs, seq.lhs, "case {case}: lhs families diverge");
            assert_eq!(
                p.agree_sets, seq.agree_sets,
                "case {case}: agree sets diverge"
            );

            let t = Tane::new().with_parallelism(par).run(&r);
            assert_eq!(
                t.fds, tane_seq.fds,
                "case {case}: TANE FDs diverge at {par:?}"
            );
            assert_eq!(
                t.stats.candidates, tane_seq.stats.candidates,
                "case {case}: TANE lattice exploration diverges at {par:?}"
            );
        }
    }
}

#[test]
fn wide_transversal_levels_are_thread_count_invariant() {
    // Random hypergraphs with enough disjoint structure to cross the
    // parallel level threshold (wide middle levels).
    let mut rng = Prng::seed_from_u64(0x9A73);
    for case in 0..8 {
        let n_pairs = rng.gen_range(6..=8usize);
        let mut edges: Vec<AttrSet> = (0..n_pairs)
            .map(|i| AttrSet::from_indices([2 * i, 2 * i + 1]))
            .collect();
        // A few random extra edges to break the pure product structure.
        for _ in 0..rng.gen_range(0..3usize) {
            let a = rng.gen_range(0..2 * n_pairs);
            let b = rng.gen_range(0..2 * n_pairs);
            edges.push(AttrSet::from_indices([a, b]));
        }
        let h = Hypergraph::new(2 * n_pairs, edges);
        let seq = h.min_transversals_levelwise_with(Parallelism::Sequential);
        for par in THREAD_COUNTS {
            assert_eq!(
                h.min_transversals_levelwise_with(par),
                seq,
                "case {case}: transversals diverge at {par:?}"
            );
        }
    }
}

#[test]
fn pool_stress_nested_scopes_and_edge_inputs() {
    // Deep nesting: par_map inside par_map inside par_chunks, on a pool
    // that also serves the other tests — the helping join must keep every
    // level live regardless of worker availability.
    let outer: Vec<u64> = (0..16).collect();
    let expected: Vec<u64> = outer
        .iter()
        .map(|&i| (0..32).map(|j| i * 100 + j).sum::<u64>() + 1)
        .collect();
    let got = par_map(Parallelism::Threads(4), &outer, |&i| {
        let inner: Vec<u64> = (0..32).collect();
        let sums = par_chunks(Parallelism::Threads(2), &inner, 8, |c| {
            c.iter().map(|&j| i * 100 + j).sum::<u64>()
        });
        sums.iter().sum::<u64>() + 1
    });
    assert_eq!(got, expected);

    // Degenerate inputs at every thread count.
    for par in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(8),
    ] {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(par, &empty, |&x| x).is_empty());
        assert_eq!(par_map(par, &[9u32], |&x| x * 2), [18]);
        assert!(par_chunks(par, &empty, 4, |c| c.len()).is_empty());
        assert_eq!(par_chunks(par, &[9u32], 4, |c| c.len()), [1]);
    }
}

#[test]
fn pool_stress_panic_in_worker_is_contained() {
    // A panicking task must neither poison the global pool nor leak into
    // later scopes: runs after the panic must still be correct.
    let items: Vec<u32> = (0..256).collect();
    let result = std::panic::catch_unwind(|| {
        par_map(Parallelism::Threads(4), &items, |&x| {
            assert!(x != 200, "poison");
            x
        })
    });
    assert!(result.is_err(), "panic must propagate to the caller");
    // The pool is still fully functional afterwards.
    let doubled = par_map(Parallelism::Threads(4), &items, |&x| x * 2);
    assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    assert!(ThreadPool::global().workers() >= 1);
}
