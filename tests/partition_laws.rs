//! Property tests for the partition substrate: the algebraic laws §3.1's
//! machinery relies on.

use depminer::prelude::*;
use depminer::relation::{Partition, Prng, ProductScratch, StrippedPartition};

mod common;
use common::{random_relation, random_set};

const CASES: usize = 64;

fn arb_relation(rng: &mut Prng) -> Relation {
    random_relation(rng, 2..=5, 0..=16, 1..=4)
}

fn norm(p: &StrippedPartition) -> Vec<Vec<u32>> {
    let mut classes: Vec<Vec<u32>> = p.classes().to_vec();
    for c in &mut classes {
        c.sort_unstable();
    }
    classes.sort();
    classes
}

#[test]
fn product_computes_union_partition() {
    let mut rng = Prng::seed_from_u64(0x9A01);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        // π̂_X · π̂_Y = π̂_{X∪Y}, for all singleton X, Y and some composites.
        let n = r.arity();
        let mut scratch = ProductScratch::new(r.len());
        for x in 0..n {
            for y in 0..n {
                let px = StrippedPartition::for_attribute(&r, x);
                let py = StrippedPartition::for_attribute(&r, y);
                let prod = px.product_with(&py, &mut scratch);
                let direct = StrippedPartition::for_set(&r, AttrSet::from_indices([x, y]));
                assert_eq!(norm(&prod), norm(&direct));
            }
        }
    }
}

#[test]
fn product_is_commutative() {
    let mut rng = Prng::seed_from_u64(0x9A02);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let n = r.arity();
        for x in 0..n {
            for y in (x + 1)..n {
                let px = StrippedPartition::for_attribute(&r, x);
                let py = StrippedPartition::for_attribute(&r, y);
                assert_eq!(norm(&px.product(&py)), norm(&py.product(&px)));
            }
        }
    }
}

#[test]
fn refinement_is_monotone() {
    let mut rng = Prng::seed_from_u64(0x9A03);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        // X ⊆ Y ⇒ π_Y refines π_X: every Y-class sits inside an X-class,
        // hence err(Y) ≤ err(X) and |π_Y| ≥ |π_X|.
        let n = r.arity();
        let err = |x: AttrSet| {
            let p = StrippedPartition::for_set(&r, x);
            p.total_tuples() - p.num_classes()
        };
        for bits in 0u32..(1 << n) {
            let x = AttrSet::from_bits(bits as u128);
            for a in 0..n {
                if !x.contains(a) {
                    assert!(err(x.with(a)) <= err(x), "err grew when refining");
                }
            }
        }
    }
}

#[test]
fn fd_holds_iff_error_is_preserved() {
    let mut rng = Prng::seed_from_u64(0x9A04);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        // The TANE validity criterion: X → A iff err(X) = err(X ∪ {A}).
        let n = r.arity();
        let x = random_set(&mut rng, 5).intersection(AttrSet::full(n));
        let a = rng.gen_range(0..5usize) % n;
        if x.contains(a) {
            continue;
        }
        let err = |s: AttrSet| {
            let p = StrippedPartition::for_set(&r, s);
            p.total_tuples() - p.num_classes()
        };
        assert_eq!(
            err(x) == err(x.with(a)),
            r.satisfies(x, a),
            "partition-error criterion diverges from definition for {x} -> {a}"
        );
    }
}

#[test]
fn stripping_preserves_class_structure() {
    let mut rng = Prng::seed_from_u64(0x9A05);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        // π̂_X = π_X minus singletons; totals line up.
        let n = r.arity();
        for a in 0..n {
            let full = Partition::for_attribute(&r, a);
            let stripped = StrippedPartition::for_attribute(&r, a);
            let singletons = full.classes.iter().filter(|c| c.len() == 1).count();
            assert_eq!(full.num_classes(), stripped.num_classes() + singletons);
            assert_eq!(stripped.total_tuples() + singletons, r.len());
            assert_eq!(stripped.full_num_classes(), full.num_classes());
        }
    }
}

#[test]
fn superkey_iff_empty_stripped_partition() {
    let mut rng = Prng::seed_from_u64(0x9A06);
    for _ in 0..CASES {
        let r = arb_relation(&mut rng);
        let n = r.arity();
        let x = random_set(&mut rng, 5).intersection(AttrSet::full(n));
        let p = StrippedPartition::for_set(&r, x);
        if r.is_empty() {
            assert!(p.is_superkey());
        } else if x.is_empty() {
            // π_∅ has one class with all tuples.
            assert_eq!(p.is_superkey(), r.len() < 2);
        } else {
            assert_eq!(p.is_superkey(), r.is_superkey(x));
        }
    }
}
