//! Property tests for the partition substrate: the algebraic laws §3.1's
//! machinery relies on.

use depminer::prelude::*;
use depminer::relation::{Partition, ProductScratch, StrippedPartition};
use proptest::prelude::*;

fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=5, 0usize..=16, 1u32..=4).prop_flat_map(|(n_attrs, n_rows, domain)| {
        proptest::collection::vec(proptest::collection::vec(0..=domain, n_rows), n_attrs)
            .prop_map(move |cols| {
                Relation::from_columns(Schema::synthetic(n_attrs).expect("valid"), cols)
                    .expect("columns are rectangular")
            })
    })
}

fn arb_set(n: usize) -> impl Strategy<Value = AttrSet> {
    (0u32..(1 << n)).prop_map(|b| AttrSet::from_bits(b as u128))
}

fn norm(p: &StrippedPartition) -> Vec<Vec<u32>> {
    let mut classes: Vec<Vec<u32>> = p.classes().to_vec();
    for c in &mut classes {
        c.sort_unstable();
    }
    classes.sort();
    classes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn product_computes_union_partition(r in arb_relation()) {
        // π̂_X · π̂_Y = π̂_{X∪Y}, for all singleton X, Y and some composites.
        let n = r.arity();
        let mut scratch = ProductScratch::new(r.len());
        for x in 0..n {
            for y in 0..n {
                let px = StrippedPartition::for_attribute(&r, x);
                let py = StrippedPartition::for_attribute(&r, y);
                let prod = px.product_with(&py, &mut scratch);
                let direct = StrippedPartition::for_set(&r, AttrSet::from_indices([x, y]));
                prop_assert_eq!(norm(&prod), norm(&direct));
            }
        }
    }

    #[test]
    fn product_is_commutative(r in arb_relation()) {
        let n = r.arity();
        for x in 0..n {
            for y in (x + 1)..n {
                let px = StrippedPartition::for_attribute(&r, x);
                let py = StrippedPartition::for_attribute(&r, y);
                prop_assert_eq!(norm(&px.product(&py)), norm(&py.product(&px)));
            }
        }
    }

    #[test]
    fn refinement_is_monotone(r in arb_relation()) {
        // X ⊆ Y ⇒ π_Y refines π_X: every Y-class sits inside an X-class,
        // hence err(Y) ≤ err(X) and |π_Y| ≥ |π_X|.
        let n = r.arity();
        proptest::prop_assume!(n >= 2);
        let err = |x: AttrSet| {
            let p = StrippedPartition::for_set(&r, x);
            p.total_tuples() - p.num_classes()
        };
        for bits in 0u32..(1 << n) {
            let x = AttrSet::from_bits(bits as u128);
            for a in 0..n {
                if !x.contains(a) {
                    prop_assert!(err(x.with(a)) <= err(x), "err grew when refining");
                }
            }
        }
    }

    #[test]
    fn fd_holds_iff_error_is_preserved(r in arb_relation(), x in arb_set(5), a in 0usize..5) {
        // The TANE validity criterion: X → A iff err(X) = err(X ∪ {A}).
        let n = r.arity();
        let x = x.intersection(AttrSet::full(n));
        let a = a % n;
        if x.contains(a) {
            return Ok(());
        }
        let err = |s: AttrSet| {
            let p = StrippedPartition::for_set(&r, s);
            p.total_tuples() - p.num_classes()
        };
        prop_assert_eq!(
            err(x) == err(x.with(a)),
            r.satisfies(x, a),
            "partition-error criterion diverges from definition for {} -> {}", x, a
        );
    }

    #[test]
    fn stripping_preserves_class_structure(r in arb_relation()) {
        // π̂_X = π_X minus singletons; totals line up.
        let n = r.arity();
        for a in 0..n {
            let full = Partition::for_attribute(&r, a);
            let stripped = StrippedPartition::for_attribute(&r, a);
            let singletons = full.classes.iter().filter(|c| c.len() == 1).count();
            prop_assert_eq!(full.num_classes(), stripped.num_classes() + singletons);
            prop_assert_eq!(
                stripped.total_tuples() + singletons,
                r.len()
            );
            prop_assert_eq!(stripped.full_num_classes(), full.num_classes());
        }
    }

    #[test]
    fn superkey_iff_empty_stripped_partition(r in arb_relation(), x in arb_set(5)) {
        let n = r.arity();
        let x = x.intersection(AttrSet::full(n));
        let p = StrippedPartition::for_set(&r, x);
        if r.is_empty() {
            prop_assert!(p.is_superkey());
        } else if x.is_empty() {
            // π_∅ has one class with all tuples.
            prop_assert_eq!(p.is_superkey(), r.len() < 2);
        } else {
            prop_assert_eq!(p.is_superkey(), r.is_superkey(x));
        }
    }
}
