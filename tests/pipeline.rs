//! End-to-end pipeline tests: synthetic benchmark data, CSV round-trips,
//! approximate mining consistency, and scale smoke tests.

use depminer::fdtheory::mine_minimal_fds;
use depminer::prelude::*;
use depminer::relation::csv;

#[test]
fn synthetic_benchmark_cells_mine_consistently() {
    // One cell per correlation family, cross-validated across miners.
    for c in [0.0, 0.3, 0.5] {
        let r = SyntheticConfig {
            n_attrs: 8,
            n_rows: 300,
            correlation: c,
            seed: 21,
        }
        .generate()
        .unwrap();
        let dm1 = DepMiner::algorithm_2(None).mine(&r);
        let dm2 = DepMiner::algorithm_3().mine(&r);
        let tane = Tane::new().run(&r);
        assert_eq!(dm1.fds, dm2.fds, "c={c}");
        assert_eq!(dm1.fds, tane.fds, "c={c}");
        // Armstrong size sanity: at least the no-FD bound is impossible to
        // exceed, and a real sample verifies when it exists.
        assert!(dm1.armstrong_size() <= (1 << r.arity()));
        if let Ok(arm) = dm1.real_world_armstrong(&r) {
            assert!(arm.len() < r.len(), "sample should be smaller than r");
        }
    }
}

#[test]
fn csv_roundtrip_preserves_dependencies() {
    let r = depminer::relation::datasets::enrollment();
    let mut buf = Vec::new();
    csv::write_csv(&r, &mut buf).unwrap();
    let r2 = csv::read_csv(buf.as_slice()).unwrap();
    assert_eq!(r2.len(), r.len());
    assert_eq!(DepMiner::new().mine(&r2).fds, DepMiner::new().mine(&r).fds);
}

#[test]
fn armstrong_relation_csv_export() {
    // The dba workflow: export the Armstrong sample for inspection.
    let r = depminer::relation::datasets::employee();
    let arm = DepMiner::new().mine(&r).real_world_armstrong(&r).unwrap();
    let mut buf = Vec::new();
    csv::write_csv(&arm, &mut buf).unwrap();
    let back = csv::read_csv(buf.as_slice()).unwrap();
    assert_eq!(back.len(), arm.len());
    assert_eq!(mine_minimal_fds(&back), mine_minimal_fds(&arm));
}

#[test]
fn approximate_epsilon_zero_equals_exact_on_synthetic() {
    let r = SyntheticConfig {
        n_attrs: 5,
        n_rows: 120,
        correlation: 0.5,
        seed: 5,
    }
    .generate()
    .unwrap();
    let exact = DepMiner::new().mine(&r).fds;
    let approx: Vec<Fd> = approximate_fds(&r, 0.0).into_iter().map(|a| a.fd).collect();
    assert_eq!(approx, exact);
}

#[test]
fn moderate_scale_smoke() {
    // |R| = 25, |r| = 3000, correlated: all miners agree and finish fast.
    let r = SyntheticConfig {
        n_attrs: 25,
        n_rows: 3_000,
        correlation: 0.5,
        seed: 1,
    }
    .generate()
    .unwrap();
    let dm = DepMiner::algorithm_3().mine(&r);
    let tane = Tane::new().run(&r);
    assert_eq!(dm.fds, tane.fds);
    assert!(!dm.fds.is_empty());
    // The Armstrong sample is orders of magnitude smaller than r (§5.3).
    let arm = dm
        .real_world_armstrong(&r)
        .expect("synthetic data has enough values");
    assert!(
        arm.len() * 5 < r.len(),
        "sample {} vs {}",
        arm.len(),
        r.len()
    );
}

#[test]
fn mining_via_prelude_api_only() {
    // The public API surface advertised in the README, exercised verbatim.
    let schema = Schema::new(["order", "customer", "country"]).unwrap();
    let rows = vec![
        vec![Value::Int(1), Value::from("acme"), Value::from("FR")],
        vec![Value::Int(2), Value::from("acme"), Value::from("FR")],
        vec![Value::Int(3), Value::from("bolt"), Value::from("DE")],
        vec![Value::Int(4), Value::from("bolt"), Value::from("DE")],
    ];
    let r = Relation::from_rows(schema, rows).unwrap();
    let result = DepMiner::new().mine(&r);
    // customer → country must be among the minimal FDs.
    let customer_country = Fd::new(AttrSet::singleton(1), 2);
    assert!(result.fds.contains(&customer_country));
    assert!(result.fds_display().contains("customer -> country"));
}
