//! Snapshot codec and checkpoint/resume properties.
//!
//! Three layers, mirroring the format's trust boundaries:
//!
//! 1. **Frame codec** — `Snapshot::encode`/`decode` round-trips for
//!    seeded-random frames; every truncation and every single-bit flip
//!    of an encoded frame is rejected with a positioned error (the
//!    CRC-32 trailer is checked before any field is trusted).
//! 2. **Checkpoint payloads** — each miner's checkpoint state
//!    round-trips through its payload codec for `Prng`-generated
//!    states, and truncated payloads fail with positioned errors.
//! 3. **Resume contract** — a governed run tripped mid-flight with a
//!    boundary-snapshot policy leaves a frame on disk from which
//!    `resume_governed` completes to an FD set identical to the
//!    uninterrupted baseline; frames for the wrong algorithm, relation
//!    or configuration are refused loudly.

use depminer::depminer::agree::agree_sets_naive;
use depminer::depminer::maxset::cmax_sets;
use depminer::depminer::{DepMiner, DepMinerCheckpoint, DEPMINER_ALGO};
use depminer::fdep::{FdepCheckpoint, FDEP_ALGO};
use depminer::fdtheory::Fd;
use depminer::govern::snapshot::{crc32, read_snapshot, Snapshot};
use depminer::govern::{Budget, Obs, SnapshotError, SnapshotPolicy};
use depminer::relation::state::db_fingerprint;
use depminer::relation::{datasets, AttrSet, Prng, Relation, StrippedPartitionDb, SyntheticConfig};
use depminer::tane::{
    approximate_fds, resume_approximate_fds_governed, ApproxCheckpoint, ApproxFd, Tane,
    TaneCheckpoint, TANE_ALGO, TANE_APPROX_ALGO,
};
use std::path::PathBuf;

/// Fresh per-test snapshot directory.
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("depminer_snapshot_tests")
        .join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Structurally rich enough that every miner sees several boundaries.
fn workload() -> Relation {
    SyntheticConfig {
        n_attrs: 7,
        n_rows: 60,
        correlation: 0.6,
        seed: 0x5EED_0901,
    }
    .generate()
    .expect("valid synthetic config")
}

fn rand_set(rng: &mut Prng, arity: usize) -> AttrSet {
    AttrSet::from_indices((0..arity).filter(|_| rng.gen_range(0..2u64) == 1))
}

fn rand_bytes(rng: &mut Prng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect()
}

// ---------------------------------------------------------------------
// 1. Frame codec
// ---------------------------------------------------------------------

#[test]
fn frames_round_trip_for_seeded_random_states() {
    let mut rng = Prng::seed_from_u64(0x54A9_0001);
    for algo in ["depminer", "tane", "tane-approx", "fdep", ""] {
        for _ in 0..8 {
            let cfg_len = rng.gen_range(0..32u64) as usize;
            let payload_len = rng.gen_range(0..512u64) as usize;
            let frame = Snapshot {
                algo: algo.to_string(),
                schema_hash: rng.next_u64(),
                config: rand_bytes(&mut rng, cfg_len),
                payload: rand_bytes(&mut rng, payload_len),
            };
            let bytes = frame.encode();
            let back = Snapshot::decode(&bytes).expect("pristine frame decodes");
            assert_eq!(back, frame);
        }
    }
}

#[test]
fn every_truncation_of_a_frame_is_rejected_with_a_position() {
    let mut rng = Prng::seed_from_u64(0x54A9_0002);
    let frame = Snapshot {
        algo: "tane".to_string(),
        schema_hash: rng.next_u64(),
        config: rand_bytes(&mut rng, 5),
        payload: rand_bytes(&mut rng, 90),
    };
    let bytes = frame.encode();
    for cut in 0..bytes.len() {
        match Snapshot::decode(&bytes[..cut]) {
            Err(SnapshotError::Corrupt { at, .. }) => {
                assert!(at <= cut as u64, "cut {cut}: position {at} past the data")
            }
            Err(other) => panic!("cut {cut}: expected Corrupt, got {other}"),
            Ok(_) => panic!("cut {cut}: truncated frame decoded"),
        }
    }
    // Trailing garbage after a valid frame must be refused too: the torn
    // writer never produces it, so its presence means foul play.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0, 1, 2]);
    assert!(Snapshot::decode(&padded).is_err(), "padded frame decoded");
}

#[test]
fn every_single_bit_flip_in_a_frame_is_rejected() {
    let mut rng = Prng::seed_from_u64(0x54A9_0003);
    let frame = Snapshot {
        algo: "depminer".to_string(),
        schema_hash: rng.next_u64(),
        config: rand_bytes(&mut rng, 9),
        payload: rand_bytes(&mut rng, 120),
    };
    let bytes = frame.encode();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[byte] ^= 1 << bit;
            match Snapshot::decode(&mutated) {
                Err(SnapshotError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {byte} bit {bit}: expected Corrupt, got {other}"),
                Ok(_) => panic!("byte {byte} bit {bit}: corrupted frame decoded"),
            }
        }
    }
}

#[test]
fn version_skew_is_reported_as_skew_not_corruption() {
    let frame = Snapshot {
        algo: "tane".to_string(),
        schema_hash: 42,
        config: vec![1, 1],
        payload: vec![7; 16],
    };
    let mut bytes = frame.encode();
    // Bump the u16 format version (offset 8, little-endian) and restamp
    // the CRC so only the version disagrees.
    bytes[8] = 2;
    bytes[9] = 0;
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
    match Snapshot::decode(&bytes) {
        Err(SnapshotError::VersionSkew { found, expected }) => {
            assert_eq!(found, 2);
            assert_eq!(expected, 1);
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// 2. Checkpoint payload codecs
// ---------------------------------------------------------------------

#[test]
fn depminer_checkpoints_round_trip_for_seeded_states() {
    let r = datasets::employee();
    let agree = agree_sets_naive(&r);
    let max = cmax_sets(&agree);
    let mut rng = Prng::seed_from_u64(0x54A9_0010);
    for i in 0..24 {
        let arity = r.arity();
        let cp = DepMinerCheckpoint {
            agree: (i % 3 != 0).then(|| agree.clone()),
            max: (i % 2 == 0).then(|| max.clone()),
            families: (0..arity)
                .map(|_| {
                    (rng.gen_range(0..3u64) > 0).then(|| {
                        (0..rng.gen_range(0..4u64))
                            .map(|_| rand_set(&mut rng, arity))
                            .collect()
                    })
                })
                .collect(),
            couples: rng.next_u64(),
            candidates: rng.next_u64(),
        };
        let payload = cp.encode_payload();
        let back = DepMinerCheckpoint::decode_payload(&payload).expect("round trip");
        assert_eq!(back, cp, "iteration {i}");
    }
}

#[test]
fn tane_and_approx_checkpoints_round_trip_for_seeded_states() {
    let mut rng = Prng::seed_from_u64(0x54A9_0011);
    let arity = 9;
    for i in 0..24 {
        let fam = |rng: &mut Prng| -> Vec<AttrSet> {
            (0..rng.gen_range(0..5u64))
                .map(|_| rand_set(rng, arity))
                .collect()
        };
        let fds = |rng: &mut Prng| -> Vec<Fd> {
            (0..rng.gen_range(0..5u64))
                .map(|_| {
                    Fd::new(
                        rand_set(rng, arity),
                        rng.gen_range(0..arity as u64) as usize,
                    )
                })
                .collect()
        };
        let cp = TaneCheckpoint {
            completed_levels: rng.gen_range(0..6u64) as usize,
            frontier: fam(&mut rng),
            prev_errs: fam(&mut rng)
                .into_iter()
                .map(|s| (s, rng.next_u64()))
                .collect(),
            cplus: fam(&mut rng)
                .into_iter()
                .map(|s| (s, rand_set(&mut rng, arity)))
                .collect(),
            fds: fds(&mut rng),
            candidates: rng.next_u64(),
            products: rng.next_u64(),
        };
        let back = TaneCheckpoint::decode_payload(&cp.encode_payload()).expect("tane round trip");
        assert_eq!(back, cp, "tane iteration {i}");

        let cp = ApproxCheckpoint {
            completed_levels: rng.gen_range(0..6u64) as usize,
            frontier: fam(&mut rng),
            found: (0..arity).map(|_| fam(&mut rng)).collect(),
            out: fds(&mut rng)
                .into_iter()
                .map(|fd| ApproxFd {
                    fd,
                    error: rng.gen_range(0..1000u64) as f64 / 1000.0,
                })
                .collect(),
            candidates: rng.next_u64(),
        };
        let back =
            ApproxCheckpoint::decode_payload(&cp.encode_payload()).expect("approx round trip");
        assert_eq!(back, cp, "approx iteration {i}");

        let cp = FdepCheckpoint {
            negative: (0..arity).map(|_| fam(&mut rng)).collect(),
            completed_attrs: rng.gen_range(0..arity as u64) as usize,
            fds: fds(&mut rng),
            couples: rng.next_u64(),
        };
        let back = FdepCheckpoint::decode_payload(&cp.encode_payload()).expect("fdep round trip");
        assert_eq!(back, cp, "fdep iteration {i}");
    }
}

#[test]
fn truncated_checkpoint_payloads_fail_with_positioned_errors() {
    let mut rng = Prng::seed_from_u64(0x54A9_0012);
    let arity = 6;
    let cp = TaneCheckpoint {
        completed_levels: 2,
        frontier: (0..4).map(|_| rand_set(&mut rng, arity)).collect(),
        prev_errs: (0..3)
            .map(|_| (rand_set(&mut rng, arity), rng.next_u64()))
            .collect(),
        cplus: (0..3)
            .map(|_| (rand_set(&mut rng, arity), rand_set(&mut rng, arity)))
            .collect(),
        fds: vec![Fd::new(AttrSet::singleton(0), 3)],
        candidates: 17,
        products: 5,
    };
    let payload = cp.encode_payload();
    for cut in 0..payload.len() {
        match TaneCheckpoint::decode_payload(&payload[..cut]) {
            Err(SnapshotError::Corrupt { at, .. }) => {
                assert!(at <= cut as u64, "cut {cut}: position {at} past the data")
            }
            Err(other) => panic!("cut {cut}: expected Corrupt, got {other}"),
            Ok(_) => panic!("cut {cut}: truncated payload decoded"),
        }
    }
}

// ---------------------------------------------------------------------
// 3. Resume contract
// ---------------------------------------------------------------------

#[test]
fn depminer_resume_completes_to_the_exact_baseline() {
    let r = workload();
    let miner = DepMiner::algorithm_2(None);
    let baseline = miner.mine(&r).fds;
    let dir = tmp_dir("depminer_resume");
    let path = dir.join(format!("{DEPMINER_ALGO}.snap"));
    let mut resumed = 0;
    // Candidate caps trip the transversal stage at different depths;
    // boundary snapshots from the completed agree/maxset stages (and the
    // forced per-attribute state at the trip) must all resume exactly.
    for max in [1u64, 5, 20, 100, 4000] {
        let policy = SnapshotPolicy::new(&dir).every_boundaries(1);
        let token = Budget::unlimited()
            .with_max_candidates(max)
            .start_with_snapshots(policy);
        let outcome = miner.mine_with_token(&r, &token);
        if outcome.is_complete() {
            assert_eq!(outcome.result.fds, baseline, "max-candidates {max}");
            assert!(!path.exists(), "completed run must discard its snapshot");
            continue;
        }
        assert!(path.exists(), "tripped run left no snapshot (max {max})");
        let snap = read_snapshot(&path).unwrap();
        let out = miner
            .resume_governed(&r, &snap, &Budget::unlimited(), Obs::none(), None)
            .expect("pristine snapshot resumes");
        assert!(out.is_complete(), "max-candidates {max}");
        assert_eq!(out.result.fds, baseline, "max-candidates {max}");
        out.result
            .audit_claimed_fds(&r)
            .expect("resumed cover audits clean");
        resumed += 1;
        std::fs::remove_file(&path).ok();
    }
    assert!(
        resumed >= 2,
        "sweep tripped only {resumed} times; workload too small"
    );
}

#[test]
fn tane_chained_resumes_reach_the_exact_baseline() {
    let r = workload();
    let tane = Tane::new();
    let baseline = tane.run(&r).fds;
    let dir = tmp_dir("tane_chain");
    let path = dir.join(format!("{TANE_ALGO}.snap"));

    let policy = SnapshotPolicy::new(&dir).every_boundaries(1);
    let token = Budget::unlimited()
        .with_max_candidates(4)
        .start_with_snapshots(policy);
    let first = tane.run_with_token(&r, &token);
    assert!(!first.is_complete(), "cap of 4 candidates must trip");

    // Each leg re-arms the policy and gets a slightly larger cap; carried
    // spend counts against it, so the caps must grow for progress.
    let mut cap = 4u64;
    for leg in 0..64 {
        assert!(path.exists(), "leg {leg}: tripped run left no snapshot");
        cap += 40;
        let snap = read_snapshot(&path).unwrap();
        let out = tane
            .resume_governed(
                &r,
                &snap,
                &Budget::unlimited().with_max_candidates(cap),
                Obs::none(),
                Some(SnapshotPolicy::new(&dir).every_boundaries(1)),
            )
            .expect("pristine snapshot resumes");
        if out.is_complete() {
            assert_eq!(out.result.fds, baseline, "after {leg} chained resumes");
            assert!(!path.exists(), "completed resume must discard the snapshot");
            return;
        }
    }
    panic!("64 chained resumes never completed");
}

#[test]
fn approx_resume_completes_to_the_exact_baseline() {
    let r = workload();
    let epsilon = 0.05;
    let baseline = approximate_fds(&r, epsilon);
    let dir = tmp_dir("approx_resume");
    let path = dir.join(format!("{TANE_APPROX_ALGO}.snap"));
    let mut resumed = 0;
    for max in [1u64, 10, 60, 300] {
        let policy = SnapshotPolicy::new(&dir).every_boundaries(1);
        let token = Budget::unlimited()
            .with_max_candidates(max)
            .start_with_snapshots(policy);
        let outcome = depminer::tane::approximate_fds_governed(&r, epsilon, &token);
        if outcome.is_complete() {
            assert_eq!(outcome.result, baseline, "max-candidates {max}");
            continue;
        }
        assert!(path.exists(), "tripped run left no snapshot (max {max})");
        let snap = read_snapshot(&path).unwrap();
        let out = resume_approximate_fds_governed(
            &r,
            epsilon,
            &snap,
            &Budget::unlimited(),
            Obs::none(),
            None,
        )
        .expect("pristine snapshot resumes");
        assert!(out.is_complete(), "max-candidates {max}");
        assert_eq!(out.result, baseline, "max-candidates {max}");
        resumed += 1;
        std::fs::remove_file(&path).ok();
    }
    assert!(
        resumed >= 2,
        "sweep tripped only {resumed} times; workload too small"
    );
}

#[test]
fn mismatched_frames_are_refused_before_any_mining() {
    let r = workload();
    let tane = Tane::new();
    let dir = tmp_dir("mismatch");
    let path = dir.join(format!("{TANE_ALGO}.snap"));
    let policy = SnapshotPolicy::new(&dir).every_boundaries(1);
    let token = Budget::unlimited()
        .with_max_candidates(4)
        .start_with_snapshots(policy);
    assert!(!tane.run_with_token(&r, &token).is_complete());
    let snap = read_snapshot(&path).unwrap();

    // Wrong algorithm: a TANE frame offered to Dep-Miner.
    let err = DepMiner::algorithm_2(None)
        .resume_governed(&r, &snap, &Budget::unlimited(), Obs::none(), None)
        .unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");

    // Wrong configuration: pruning switches differ.
    let mut unpruned = Tane::new();
    unpruned.key_pruning = false;
    let err = unpruned
        .resume_governed(&r, &snap, &Budget::unlimited(), Obs::none(), None)
        .unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");

    // Wrong relation: the fingerprint catches a changed input.
    let other = SyntheticConfig {
        seed: 0x0DD_BA11,
        ..SyntheticConfig::new(7, 60, 0.6)
    }
    .generate()
    .unwrap();
    let err = tane
        .resume_governed(&other, &snap, &Budget::unlimited(), Obs::none(), None)
        .unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");

    // An arity mismatch inside an otherwise-valid FDEP payload is caught
    // by the dedicated guard (the frame itself validates: same relation,
    // same empty config).
    let db = StrippedPartitionDb::from_relation(&r);
    let cp = FdepCheckpoint {
        negative: vec![Vec::new(); r.arity() - 1],
        completed_attrs: 0,
        fds: Vec::new(),
        couples: 0,
    };
    let bogus = Snapshot {
        algo: FDEP_ALGO.to_string(),
        schema_hash: db_fingerprint(&db),
        config: Vec::new(),
        payload: cp.encode_payload(),
    };
    let err = depminer::fdep::Fdep::new()
        .resume_governed(&r, &bogus, &Budget::unlimited(), Obs::none(), None)
        .unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");

    // And the pristine frame still resumes fine after all the refusals.
    let out = tane
        .resume_governed(&r, &snap, &Budget::unlimited(), Obs::none(), None)
        .unwrap();
    assert!(out.is_complete());
    assert_eq!(out.result.fds, tane.run(&r).fds);
}
