//! Property tests for the FD-theory layer: closure laws, cover equivalence,
//! canonical-cover guarantees, key enumeration, the MAX = GEN theorem, and
//! normalization invariants.

use depminer::fdtheory::{
    bcnf_decompose, candidate_keys, canonical_cover, closed_sets, closure, closure_naive, covers,
    equivalent, generators, implies, is_3nf, is_bcnf, is_superkey, max_sets, synthesize_3nf, Fd,
};
use depminer::relation::{AttrSet, Prng};

mod common;
use common::{random_fds, random_set};

const N: usize = 5;
const CASES: usize = 128;

fn arb_fds(rng: &mut Prng) -> Vec<Fd> {
    random_fds(rng, N, 6)
}

#[test]
fn closure_matches_naive() {
    let mut rng = Prng::seed_from_u64(0x7E01);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let x = random_set(&mut rng, N);
        assert_eq!(closure(x, &f), closure_naive(x, &f));
    }
}

#[test]
fn closure_is_a_closure_operator() {
    let mut rng = Prng::seed_from_u64(0x7E02);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let x = random_set(&mut rng, N);
        let y = random_set(&mut rng, N);
        let cx = closure(x, &f);
        assert!(x.is_subset_of(cx)); // extensive
        assert_eq!(closure(cx, &f), cx); // idempotent
        if x.is_subset_of(y) {
            assert!(cx.is_subset_of(closure(y, &f))); // monotone
        }
    }
}

#[test]
fn canonical_cover_is_equivalent_and_irredundant() {
    let mut rng = Prng::seed_from_u64(0x7E03);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let cc = canonical_cover(&f);
        assert!(equivalent(&cc, &f));
        for i in 0..cc.len() {
            let mut rest = cc.clone();
            let gone = rest.remove(i);
            assert!(!implies(&rest, gone), "{gone} redundant in canonical cover");
            for b in gone.lhs.iter() {
                assert!(
                    !implies(&cc, Fd::new(gone.lhs.without(b), gone.rhs)),
                    "extraneous attribute in {gone}"
                );
            }
        }
    }
}

#[test]
fn covers_is_reflexive_and_transitive() {
    let mut rng = Prng::seed_from_u64(0x7E04);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let g = arb_fds(&mut rng);
        assert!(covers(&f, &f));
        if covers(&f, &g) && covers(&g, &f) {
            assert!(equivalent(&f, &g));
        }
    }
}

#[test]
fn keys_are_minimal_superkeys_and_complete() {
    let mut rng = Prng::seed_from_u64(0x7E05);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let keys = candidate_keys(&f, N);
        assert!(!keys.is_empty());
        for &k in &keys {
            assert!(is_superkey(k, &f, N));
            for a in k.iter() {
                assert!(!is_superkey(k.without(a), &f, N));
            }
        }
        // Completeness: every superkey contains a candidate key; every
        // minimal superkey (by brute force) is listed.
        for bits in 0u32..(1 << N) {
            let x = AttrSet::from_bits(bits as u128);
            if is_superkey(x, &f, N) {
                assert!(keys.iter().any(|&k| k.is_subset_of(x)));
                if x.iter().all(|a| !is_superkey(x.without(a), &f, N)) {
                    assert!(keys.contains(&x), "missing key {x}");
                }
            }
        }
    }
}

#[test]
fn max_equals_gen() {
    let mut rng = Prng::seed_from_u64(0x7E06);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        // The [MR86] theorem MAX(F) = GEN(F), with GEN computed from
        // meet-irreducibility — independent of the max-set construction.
        let mut gens = generators(&f, N);
        gens.sort();
        assert_eq!(gens, max_sets(&f, N));
    }
}

#[test]
fn closed_sets_form_a_meet_semilattice() {
    let mut rng = Prng::seed_from_u64(0x7E07);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let cl = closed_sets(&f, N);
        assert!(cl.contains(&AttrSet::full(N)));
        for &x in &cl {
            for &y in &cl {
                assert!(
                    cl.binary_search(&x.intersection(y)).is_ok(),
                    "closed sets not closed under intersection"
                );
            }
        }
    }
}

#[test]
fn bcnf_decomposition_invariants() {
    let mut rng = Prng::seed_from_u64(0x7E08);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let frags = bcnf_decompose(N, &f);
        assert!(!frags.is_empty());
        let union = frags
            .iter()
            .fold(AttrSet::empty(), |acc, d| acc.union(d.attrs));
        assert_eq!(union, AttrSet::full(N), "attributes lost");
        for frag in &frags {
            assert!(is_bcnf(frag.attrs, &f), "fragment {} not BCNF", frag.attrs);
        }
    }
}

#[test]
fn three_nf_synthesis_invariants() {
    let mut rng = Prng::seed_from_u64(0x7E09);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let frags = synthesize_3nf(N, &f);
        assert!(!frags.is_empty());
        let union = frags
            .iter()
            .fold(AttrSet::empty(), |acc, d| acc.union(d.attrs));
        assert_eq!(union, AttrSet::full(N), "attributes lost");
        // Dependency preservation: the union of projected FDs covers F.
        let local: Vec<Fd> = frags.iter().flat_map(|d| d.local_fds.clone()).collect();
        assert!(covers(&local, &f), "3NF synthesis lost dependencies");
        // Losslessness: some fragment contains a candidate key.
        let keys = candidate_keys(&f, N);
        assert!(frags
            .iter()
            .any(|d| keys.iter().any(|&k| k.is_subset_of(d.attrs))));
        for frag in &frags {
            assert!(is_3nf(frag.attrs, &f), "fragment {} not 3NF", frag.attrs);
        }
    }
}

#[test]
fn bcnf_implies_3nf() {
    let mut rng = Prng::seed_from_u64(0x7E0A);
    for _ in 0..CASES {
        let f = arb_fds(&mut rng);
        let x = random_set(&mut rng, N);
        if !x.is_empty() && is_bcnf(x, &f) {
            assert!(is_3nf(x, &f), "BCNF fragment {x} fails 3NF check");
        }
    }
}
