//! Property tests for the FD-theory layer: closure laws, cover equivalence,
//! canonical-cover guarantees, key enumeration, the MAX = GEN theorem, and
//! normalization invariants.

use depminer::fdtheory::{
    bcnf_decompose, candidate_keys, canonical_cover, closed_sets, closure, closure_naive, covers,
    equivalent, generators, implies, is_3nf, is_bcnf, is_superkey, max_sets, synthesize_3nf, Fd,
};
use depminer::relation::AttrSet;
use proptest::prelude::*;

const N: usize = 5;

fn arb_fd() -> impl Strategy<Value = Fd> {
    (0u32..(1 << N), 0usize..N)
        .prop_map(|(bits, rhs)| Fd::new(AttrSet::from_bits(bits as u128), rhs))
}

fn arb_fds() -> impl Strategy<Value = Vec<Fd>> {
    proptest::collection::vec(arb_fd(), 0..=6)
}

fn arb_set() -> impl Strategy<Value = AttrSet> {
    (0u32..(1 << N)).prop_map(|b| AttrSet::from_bits(b as u128))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn closure_matches_naive(f in arb_fds(), x in arb_set()) {
        prop_assert_eq!(closure(x, &f), closure_naive(x, &f));
    }

    #[test]
    fn closure_is_a_closure_operator(f in arb_fds(), x in arb_set(), y in arb_set()) {
        let cx = closure(x, &f);
        prop_assert!(x.is_subset_of(cx));                       // extensive
        prop_assert_eq!(closure(cx, &f), cx);                    // idempotent
        if x.is_subset_of(y) {
            prop_assert!(cx.is_subset_of(closure(y, &f)));       // monotone
        }
    }

    #[test]
    fn canonical_cover_is_equivalent_and_irredundant(f in arb_fds()) {
        let cc = canonical_cover(&f);
        prop_assert!(equivalent(&cc, &f));
        for i in 0..cc.len() {
            let mut rest = cc.clone();
            let gone = rest.remove(i);
            prop_assert!(!implies(&rest, gone), "{} redundant in canonical cover", gone);
            for b in gone.lhs.iter() {
                prop_assert!(
                    !implies(&cc, Fd::new(gone.lhs.without(b), gone.rhs)),
                    "extraneous attribute in {}", gone
                );
            }
        }
    }

    #[test]
    fn covers_is_reflexive_and_transitive(f in arb_fds(), g in arb_fds()) {
        prop_assert!(covers(&f, &f));
        if covers(&f, &g) && covers(&g, &f) {
            prop_assert!(equivalent(&f, &g));
        }
    }

    #[test]
    fn keys_are_minimal_superkeys_and_complete(f in arb_fds()) {
        let keys = candidate_keys(&f, N);
        prop_assert!(!keys.is_empty());
        for &k in &keys {
            prop_assert!(is_superkey(k, &f, N));
            for a in k.iter() {
                prop_assert!(!is_superkey(k.without(a), &f, N));
            }
        }
        // Completeness: every superkey contains a candidate key; every
        // minimal superkey (by brute force) is listed.
        for bits in 0u32..(1 << N) {
            let x = AttrSet::from_bits(bits as u128);
            if is_superkey(x, &f, N) {
                prop_assert!(keys.iter().any(|&k| k.is_subset_of(x)));
                if x.iter().all(|a| !is_superkey(x.without(a), &f, N)) {
                    prop_assert!(keys.contains(&x), "missing key {}", x);
                }
            }
        }
    }

    #[test]
    fn max_equals_gen(f in arb_fds()) {
        // The [MR86] theorem MAX(F) = GEN(F), with GEN computed from
        // meet-irreducibility — independent of the max-set construction.
        let mut gens = generators(&f, N);
        gens.sort();
        prop_assert_eq!(gens, max_sets(&f, N));
    }

    #[test]
    fn closed_sets_form_a_meet_semilattice(f in arb_fds()) {
        let cl = closed_sets(&f, N);
        prop_assert!(cl.contains(&AttrSet::full(N)));
        for &x in &cl {
            for &y in &cl {
                prop_assert!(cl.binary_search(&x.intersection(y)).is_ok(),
                    "closed sets not closed under intersection");
            }
        }
    }

    #[test]
    fn bcnf_decomposition_invariants(f in arb_fds()) {
        let frags = bcnf_decompose(N, &f);
        prop_assert!(!frags.is_empty());
        let union = frags.iter().fold(AttrSet::empty(), |acc, d| acc.union(d.attrs));
        prop_assert_eq!(union, AttrSet::full(N), "attributes lost");
        for frag in &frags {
            prop_assert!(is_bcnf(frag.attrs, &f), "fragment {} not BCNF", frag.attrs);
        }
    }

    #[test]
    fn three_nf_synthesis_invariants(f in arb_fds()) {
        let frags = synthesize_3nf(N, &f);
        prop_assert!(!frags.is_empty());
        let union = frags.iter().fold(AttrSet::empty(), |acc, d| acc.union(d.attrs));
        prop_assert_eq!(union, AttrSet::full(N), "attributes lost");
        // Dependency preservation: the union of projected FDs covers F.
        let local: Vec<Fd> = frags.iter().flat_map(|d| d.local_fds.clone()).collect();
        prop_assert!(covers(&local, &f), "3NF synthesis lost dependencies");
        // Losslessness: some fragment contains a candidate key.
        let keys = candidate_keys(&f, N);
        prop_assert!(frags.iter().any(|d| keys.iter().any(|&k| k.is_subset_of(d.attrs))));
        for frag in &frags {
            prop_assert!(is_3nf(frag.attrs, &f), "fragment {} not 3NF", frag.attrs);
        }
    }

    #[test]
    fn bcnf_implies_3nf(f in arb_fds(), x in arb_set()) {
        if !x.is_empty() && is_bcnf(x, &f) {
            prop_assert!(is_3nf(x, &f), "BCNF fragment {} fails 3NF check", x);
        }
    }
}
