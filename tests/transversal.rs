//! Property tests for the hypergraph-transversal engines: agreement of the
//! paper's levelwise Algorithm 5 with Berge's algorithm, minimality and
//! coverage of every result, and the nihilpotence `Tr(Tr(H)) = H` that the
//! TANE→Armstrong extension relies on (§5.1).

use depminer::hypergraph::Hypergraph;
use depminer::relation::AttrSet;
use proptest::prelude::*;

/// Random hypergraph over ≤ 7 vertices with ≤ 6 non-empty edges.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    proptest::collection::vec(1u32..(1 << 7), 1..=6).prop_map(|edges| {
        Hypergraph::new(
            7,
            edges
                .into_iter()
                .map(|b| AttrSet::from_bits(b as u128))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engines_agree(h in arb_hypergraph()) {
        prop_assert_eq!(h.min_transversals_levelwise(), h.min_transversals_berge());
    }

    #[test]
    fn results_are_minimal_transversals(h in arb_hypergraph()) {
        let tr = h.min_transversals_levelwise();
        prop_assert!(!tr.is_empty(), "a non-empty simple hypergraph always has transversals");
        for &t in &tr {
            prop_assert!(h.is_minimal_transversal(t), "{} is not a minimal transversal", t);
        }
        // Pairwise incomparable (an antichain).
        for &a in &tr {
            for &b in &tr {
                prop_assert!(a == b || !a.is_subset_of(b));
            }
        }
    }

    #[test]
    fn results_are_complete(h in arb_hypergraph()) {
        // Every minimal transversal found by exhaustive search appears.
        let tr = h.min_transversals_levelwise();
        let support = h.vertex_support();
        for bits in 0u32..(1 << 7) {
            let cand = AttrSet::from_bits(bits as u128);
            if cand.is_subset_of(support) && h.is_minimal_transversal(cand) {
                prop_assert!(tr.contains(&cand), "missing minimal transversal {}", cand);
            }
        }
    }

    #[test]
    fn nihilpotence(h in arb_hypergraph()) {
        let trtr = h.transversal_hypergraph().transversal_hypergraph();
        prop_assert_eq!(trtr.edges(), h.edges());
    }

    #[test]
    fn transversal_duality_is_symmetric(h in arb_hypergraph()) {
        // G = Tr(H) ⇒ Tr(G) = H, in both engines.
        let g = Hypergraph::new(h.n_vertices(), h.min_transversals_berge());
        let back = g.min_transversals_levelwise();
        prop_assert_eq!(back, h.edges().to_vec());
    }
}
