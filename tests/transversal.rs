//! Property tests for the hypergraph-transversal engines: agreement of the
//! paper's levelwise Algorithm 5 with Berge's algorithm, minimality and
//! coverage of every result, and the nihilpotence `Tr(Tr(H)) = H` that the
//! TANE→Armstrong extension relies on (§5.1).

use depminer::hypergraph::Hypergraph;
use depminer::relation::{AttrSet, Prng};

const CASES: usize = 128;

/// Random hypergraph over ≤ 7 vertices with ≤ 6 non-empty edges.
fn random_hypergraph(rng: &mut Prng) -> Hypergraph {
    let n_edges = rng.gen_range(1..=6usize);
    let edges: Vec<AttrSet> = (0..n_edges)
        .map(|_| AttrSet::from_bits(rng.gen_range(1u32..(1 << 7)) as u128))
        .collect();
    Hypergraph::new(7, edges)
}

#[test]
fn engines_agree() {
    let mut rng = Prng::seed_from_u64(0x7A01);
    for _ in 0..CASES {
        let h = random_hypergraph(&mut rng);
        assert_eq!(h.min_transversals_levelwise(), h.min_transversals_berge());
    }
}

#[test]
fn results_are_minimal_transversals() {
    let mut rng = Prng::seed_from_u64(0x7A02);
    for _ in 0..CASES {
        let h = random_hypergraph(&mut rng);
        let tr = h.min_transversals_levelwise();
        assert!(
            !tr.is_empty(),
            "a non-empty simple hypergraph always has transversals"
        );
        for &t in &tr {
            assert!(
                h.is_minimal_transversal(t),
                "{t} is not a minimal transversal"
            );
        }
        // Pairwise incomparable (an antichain).
        for &a in &tr {
            for &b in &tr {
                assert!(a == b || !a.is_subset_of(b));
            }
        }
    }
}

#[test]
fn results_are_complete() {
    let mut rng = Prng::seed_from_u64(0x7A03);
    for _ in 0..CASES {
        let h = random_hypergraph(&mut rng);
        // Every minimal transversal found by exhaustive search appears.
        let tr = h.min_transversals_levelwise();
        let support = h.vertex_support();
        for bits in 0u32..(1 << 7) {
            let cand = AttrSet::from_bits(bits as u128);
            if cand.is_subset_of(support) && h.is_minimal_transversal(cand) {
                assert!(tr.contains(&cand), "missing minimal transversal {cand}");
            }
        }
    }
}

#[test]
fn nihilpotence() {
    let mut rng = Prng::seed_from_u64(0x7A04);
    for _ in 0..CASES {
        let h = random_hypergraph(&mut rng);
        let trtr = h.transversal_hypergraph().transversal_hypergraph();
        assert_eq!(trtr.edges(), h.edges());
    }
}

#[test]
fn transversal_duality_is_symmetric() {
    let mut rng = Prng::seed_from_u64(0x7A05);
    for _ in 0..CASES {
        let h = random_hypergraph(&mut rng);
        // G = Tr(H) ⇒ Tr(G) = H, in both engines.
        let g = Hypergraph::new(h.n_vertices(), h.min_transversals_berge());
        let back = g.min_transversals_levelwise();
        assert_eq!(back, h.edges().to_vec());
    }
}
